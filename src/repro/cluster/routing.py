"""Cross-node call routing: NIC queue pairs over fabric links.

One :class:`Route` exists per directed, linked node pair.  Its anatomy
mirrors a real RDMA/NVMe-oF initiator-target path, built entirely from
existing primitives:

1. the initiator submits a :class:`_RemoteOp` envelope to the route's
   **NIC queue pair** — an unordered private-memory
   :class:`~repro.ipc.QueuePair` whose pop cost is the NIC's WQE fetch
   (``nic_tx_ns``) and whose ``owner`` names the route, so a sanitizer
   conservation failure says *which node's* NIC leaked;
2. the TX loop pops the envelope, pays the request's serialization +
   propagation on the outbound :class:`~repro.cluster.fabric.FabricLink`,
   and executes the request on the target node through the route's
   **proxy client** (an ordinary unordered LabStorClient connected to
   the target's Runtime at setup);
3. the response pays the return link, then the envelope completes on
   the NIC QP — **always**, as an error completion (NACK) when anything
   failed, so ``submitted == completed + inflight`` holds through node
   crashes, timeouts, and unresolvable mounts;
4. the RX loop reaps completions (``nic_rx_ns`` per reap) and fires the
   initiator's pending event.

Target-node crashes surface naturally: the proxy client's Wait rides
out the crash window and raises :class:`~repro.errors.RuntimeCrashed`,
which comes back to the caller as the NACK payload — the signal
:class:`~repro.cluster.ShardedKVS` uses to fail over to a replica.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Optional

from ..errors import FabricError
from ..ipc.queue_pair import Completion, QueuePair
from ..sim import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from .builder import Cluster
    from .node import Node

__all__ = ["Route", "RemoteRoute", "RouteExecutor"]

#: fixed wire overhead per message: headers, op code, key framing
WIRE_HEADER_BYTES = 64


def _payload_bytes(value: Any) -> int:
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    return 0


def request_wire_bytes(req: Any) -> int:
    """On-the-wire size of a request: header + payload blobs/strings."""
    payload = getattr(req, "payload", None) or {}
    return WIRE_HEADER_BYTES + sum(_payload_bytes(v) for v in payload.values())


def response_wire_bytes(comp: Completion) -> int:
    """On-the-wire size of a response (errors are header-sized NACKs)."""
    return WIRE_HEADER_BYTES + _payload_bytes(comp.value)


class _RemoteOp:
    """Envelope a remote call rides through the NIC queue pair."""

    __slots__ = ("path", "req", "timeout_ns", "est_ns")

    def __init__(self, path: str, req: Any, timeout_ns: Optional[int]) -> None:
        self.path = path
        self.req = req
        self.timeout_ns = timeout_ns
        self.est_ns = 0  # queue-depth estimator input (NIC QPs don't classify)


class Route:
    """One directed initiator→target path (built by the Cluster)."""

    def __init__(self, cluster: "Cluster", src: "Node", dst: "Node") -> None:
        env = cluster.env
        self.env = env
        self.src = src
        self.dst = dst
        self.out = cluster.fabric.link(src.name, dst.name)
        self.back = cluster.fabric.link(dst.name, src.name)
        self.qp = QueuePair(
            env,
            primary=False,
            ordered=False,
            depth=4096,
            segment=None,
            pop_cost_ns=self.out.cost.nic_tx_ns,
            owner=f"fabric:{src.name}->{dst.name}",
        )
        # target-side execution identity: one unordered client per route,
        # connected at setup (connect drives the sim; mid-run would break)
        self.proxy = dst.client(ordered=False)
        self._pending: dict[int, Event] = {}  # req_id -> initiator event
        self.remote_calls = 0
        self.nacks = 0
        self._tx = env.process(
            self._tx_loop(), name=f"nic.{src.name}->{dst.name}.tx", daemon=True
        )
        self._rx = env.process(
            self._rx_loop(), name=f"nic.{src.name}->{dst.name}.rx", daemon=True
        )

    # -- initiator side ------------------------------------------------
    def call(self, path: str, req: Any, timeout_ns: int | None = None):
        """Process generator: one remote call, raising the remote error."""
        ev = self.env.event()
        self._pending[req.req_id] = ev
        try:
            self.qp.submit(_RemoteOp(path, req, timeout_ns))
            comp = yield ev
        except BaseException:
            self._pending.pop(req.req_id, None)
            raise
        if comp.error is not None:
            raise comp.error
        return comp.value

    # -- NIC loops -------------------------------------------------------
    def _tx_loop(self):
        try:
            while True:
                op = yield from self.qp.pop_request()  # pays the WQE fetch
                # each op executes in its own process so a slow or crashed
                # target never head-of-line blocks the NIC
                self.env.process(
                    self._execute(op),
                    name=f"nic.{self.src.name}->{self.dst.name}.op{op.req.req_id}",
                    daemon=True,
                )
        except Interrupt:
            return  # route closed

    def _execute(self, op: _RemoteOp):
        self.remote_calls += 1
        req = op.req
        try:
            yield from self.out.transfer(request_wire_bytes(req))
            stack, _ = self.dst.runtime.namespace.resolve(op.path)
            value = yield from self.proxy.call(stack, req, timeout_ns=op.timeout_ns)
            comp = Completion(req, value=value)
        except (Interrupt, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - becomes the NACK
            self.nacks += 1
            comp = Completion(req, error=exc)
        try:
            yield from self.back.transfer(response_wire_bytes(comp))
        except (Interrupt, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - return path failed
            if comp.error is None:
                self.nacks += 1
                comp = Completion(req, error=exc)
        # conservation: every accepted submission completes, ack or NACK
        self.qp.complete(comp)

    def _rx_loop(self):
        try:
            while True:
                comp = yield from self.qp.pop_completion()  # pays nic_rx-ish reap
                ev = self._pending.pop(comp.request.req_id, None)
                if ev is not None and not ev.triggered:
                    ev.succeed(comp)
        except Interrupt:
            return  # route closed

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        for proc in (self._tx, self._rx):
            if proc is not None and proc.is_alive:
                proc.interrupt("route closed")
        self._tx = self._rx = None
        self.proxy.close()
        self._pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<Route {self.src.name}->{self.dst.name} "
                f"calls={self.remote_calls} nacks={self.nacks}>")


# ----------------------------------------------------------------------
# split route halves for the sharded runner (repro.sim.par)
# ----------------------------------------------------------------------
def pickle_error(exc: BaseException) -> bytes:
    """Pickle a remote failure, verified round-trippable.

    Exception classes whose ``__init__`` signatures don't survive the
    default ``(cls, args)`` reconstruction (or that drag unpicklable
    context along) degrade to a :class:`FabricError` carrying the type
    name and message — the failover-relevant classes (TimeoutError,
    RuntimeCrashed, WorkerCrashed, ...) all round-trip intact.
    """
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return blob
    except Exception:  # noqa: BLE001 - any pickling defect degrades
        return pickle.dumps(
            FabricError(f"remote {type(exc).__name__}: {exc}"))


class RemoteRoute:
    """Initiator half of a :class:`Route` when source and target live on
    different Environments (the sharded runner).

    The NIC queue pair, the TX serialization on the outbound link, and
    the RX completion reap all stay on the *source* env — byte-identical
    cost structure to :class:`Route`.  What changes is step 2→3 of the
    anatomy: instead of executing through a shared proxy client, the
    request is pickled onto an egress port as a timestamped message whose
    arrival is ``wire release + link_lat_ns``; the response comes back
    the same way and completes the queue pair (ACK or NACK) so NIC
    conservation holds across node crashes exactly as in the serial
    route.
    """

    def __init__(self, env, src_name: str, dst_name: str, out, port) -> None:
        self.env = env
        self.src_name = src_name
        self.dst_name = dst_name
        self.out = out          # FabricLink src->dst (owned by this env)
        self.port = port        # egress port toward dst (sim.par.OutPort)
        self.qp = QueuePair(
            env,
            primary=False,
            ordered=False,
            depth=4096,
            segment=None,
            pop_cost_ns=out.cost.nic_tx_ns,
            owner=f"fabric:{src_name}->{dst_name}",
        )
        self._pending: dict[int, Event] = {}   # req_id -> initiator event
        self._inflight: dict[int, Any] = {}    # req_id -> original request
        self.remote_calls = 0
        self.nacks = 0
        self._tx = env.process(
            self._tx_loop(), name=f"nic.{src_name}->{dst_name}.tx", daemon=True
        )
        self._rx = env.process(
            self._rx_loop(), name=f"nic.{src_name}->{dst_name}.rx", daemon=True
        )

    @property
    def inflight(self) -> int:
        """Calls awaiting a cross-shard response (termination input)."""
        return len(self._inflight)

    # -- initiator side ------------------------------------------------
    def call(self, path: str, req: Any, timeout_ns: int | None = None):
        """Process generator: one remote call, raising the remote error."""
        ev = self.env.event()
        self._pending[req.req_id] = ev
        try:
            self.qp.submit(_RemoteOp(path, req, timeout_ns))
            comp = yield ev
        except BaseException:
            self._pending.pop(req.req_id, None)
            raise
        if comp.error is not None:
            raise comp.error
        return comp.value

    def _tx_loop(self):
        try:
            while True:
                op = yield from self.qp.pop_request()  # pays the WQE fetch
                self.env.process(
                    self._send(op),
                    name=f"nic.{self.src_name}->{self.dst_name}.op{op.req.req_id}",
                    daemon=True,
                )
        except Interrupt:
            return  # route closed

    def _send(self, op: _RemoteOp):
        self.remote_calls += 1
        req = op.req
        self._inflight[req.req_id] = req
        nbytes = request_wire_bytes(req)
        arrival = yield from self.out.send(nbytes)
        self.port.send("req", arrival, req.req_id, nbytes,
                       pickle.dumps((op.path, req, op.timeout_ns)))

    def deliver(self, msg) -> None:
        """Ingress callback: a response message reached this env.

        Completes the queue pair unconditionally — even when the waiting
        caller already gave up (a settled KVS fan-out interrupts its
        laggard replica daemons) — so ``submitted == completed`` still
        balances after the run.
        """
        req = self._inflight.pop(msg.req_id)
        value, errblob = pickle.loads(msg.payload)
        error = pickle.loads(errblob) if errblob is not None else None
        if error is not None:
            self.nacks += 1
        self.qp.complete(Completion(req, value=value, error=error))

    def _rx_loop(self):
        try:
            while True:
                comp = yield from self.qp.pop_completion()  # pays the reap
                ev = self._pending.pop(comp.request.req_id, None)
                if ev is not None and not ev.triggered:
                    ev.succeed(comp)
        except Interrupt:
            return  # route closed

    def close(self) -> None:
        for proc in (self._tx, self._rx):
            if proc is not None and proc.is_alive:
                proc.interrupt("route closed")
        self._tx = self._rx = None
        self._pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<RemoteRoute {self.src_name}->{self.dst_name} "
                f"calls={self.remote_calls} inflight={self.inflight}>")


class RouteExecutor:
    """Executor half: receives pickled requests for one inbound directed
    pair, executes them on the local node through an ordinary unordered
    proxy client, and ships the (value | NACK) response back over the
    locally-owned return link.

    Requests are re-identified from the local process's request-id
    counter on arrival: wire ids from different source nodes come from
    independent counters and may collide inside one worker's active map,
    while the response still travels under the wire id the initiator is
    waiting on.
    """

    def __init__(self, env, src_name: str, dst_node, back, port) -> None:
        self.env = env
        self.src_name = src_name
        self.node = dst_node
        self.back = back        # FabricLink dst->src (owned by this env)
        self.port = port        # egress port toward src
        self.proxy = dst_node.client(ordered=False)
        self.active = 0
        self.handled = 0
        self.nacks = 0

    def deliver(self, msg) -> None:
        """Ingress callback: a request message reached this env."""
        self.env.process(
            self._handle(msg),
            name=f"nicx.{self.src_name}->{self.node.name}.op{msg.req_id}",
            daemon=True,
        )

    def _handle(self, msg):
        from ..core import requests as _corereq

        self.active += 1
        try:
            path, req, timeout_ns = pickle.loads(msg.payload)
            req.req_id = next(_corereq._req_ids)
            try:
                stack, _ = self.node.runtime.namespace.resolve(path)
                value = yield from self.proxy.call(stack, req,
                                                   timeout_ns=timeout_ns)
                body = (value, None)
            except (Interrupt, GeneratorExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - becomes the NACK
                self.nacks += 1
                body = (None, pickle_error(exc))
            nbytes = WIRE_HEADER_BYTES + _payload_bytes(body[0])
            arrival = yield from self.back.send(nbytes)
            self.port.send("resp", arrival, msg.req_id, nbytes,
                           pickle.dumps(body))
            self.handled += 1
        finally:
            self.active -= 1

    def close(self) -> None:
        self.proxy.close()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"<RouteExecutor {self.src_name}->{self.node.name} "
                f"handled={self.handled} active={self.active}>")
