"""Cluster-scale LabStor: nodes, network fabric, and sharded services.

This package lifts the single-machine simulation to a multi-node
cluster while keeping every determinism guarantee intact:

- :mod:`~repro.cluster.node` — :class:`Node`, one LabStor deployment
  (devices + Runtime + workers) on the cluster's shared clock, and
  :class:`ClusterClient`, a client that routes calls node-locally or
  over the fabric;
- :mod:`~repro.cluster.fabric` — the network cost model
  (:class:`FabricCost`) and directed-link topology
  (:class:`NetworkFabric` / :class:`FabricLink`);
- :mod:`~repro.cluster.routing` — :class:`Route`, the NIC-queue-pair
  initiator→target path a remote call rides;
- :mod:`~repro.cluster.kvs` — :class:`HashRing` consistent-hash
  placement and :class:`ShardedKVS`, the replicated cluster-wide
  GenericKVS surface;
- :mod:`~repro.cluster.builder` — :class:`Cluster` and the fluent
  :func:`cluster` / :class:`ClusterBuilder` front door, the public
  path to multi-node composition.

Quickstart::

    from repro.cluster import cluster

    cl = (cluster(seed=1)
          .node("n0").node("n1").node("n2")
          .build())
    kvs = cl.shard_kvs("kvs::/t", replicas=3)
    cl.run(cl.process(kvs.put("alpha", b"1")))
    value = cl.run(cl.process(kvs.get("alpha")))
    cl.shutdown()
"""

from .builder import Cluster, ClusterBuilder, cluster
from .fabric import (
    DEFAULT_FABRIC_COST,
    FabricCost,
    FabricLink,
    FabricTransport,
    NetworkFabric,
)
from .kvs import FAILOVER_ERRORS, HashRing, ShardedKVS
from .node import ClusterClient, Node
from .routing import Route

__all__ = [
    "Cluster",
    "ClusterBuilder",
    "cluster",
    "Node",
    "ClusterClient",
    "NetworkFabric",
    "FabricLink",
    "FabricCost",
    "FabricTransport",
    "DEFAULT_FABRIC_COST",
    "Route",
    "HashRing",
    "ShardedKVS",
    "FAILOVER_ERRORS",
]
