"""Userspace I/O interfaces over the kernel path (the Fig 6 baselines).

Each interface drives raw O_DIRECT I/O against a device file through the
simulated kernel block layer, charging the software costs specific to that
API.  The LabStor counterparts (Kernel Driver / SPDK / DAX LabMods) live
in :mod:`repro.mods.drivers` and skip most of these costs — the difference
is exactly what the paper's storage-API stress test measures.

Cost structure per 4KB op (defaults; see CostModel):

====================  ==========================================================
interface             charges
====================  ==========================================================
posix                 syscall + blk(alloc/sched/dispatch/complete) + IRQ +
                      context switch (blocking wait)
posix_aio             posix + two AIO worker-thread hops
libaio                io_submit syscall + blk + IRQ + amortized io_getevents
io_uring              amortized SQE submit + blk + IRQ + CQE reap
====================  ==========================================================
"""

from __future__ import annotations

import abc

from ..devices.base import BlockDevice, IoOp
from ..errors import KernelError
from ..sim import Environment
from .block_layer import BlockLayer
from .cpu import DEFAULT_COST, CostModel

__all__ = [
    "IoInterface",
    "PosixSync",
    "PosixAio",
    "Libaio",
    "IoUring",
    "INTERFACES",
    "make_interface",
]


class IoInterface(abc.ABC):
    """A userspace API for submitting block I/O to a raw device file."""

    name = "abstract"

    def __init__(
        self,
        env: Environment,
        device: BlockDevice,
        cost: CostModel = DEFAULT_COST,
        retry=None,
    ) -> None:
        self.env = env
        self.device = device
        self.cost = cost
        #: optional repro.faults.RetryPolicy — the kernel baseline gets the
        #: same bounded-retry resilience as the LabStor connectors
        self.retry = retry
        self.block_layer = BlockLayer(env, device, cost)
        self.completed_ops = 0

    def submit(self, op: IoOp, offset: int, size: int, data: bytes | None = None, core: int = 0):
        """Process generator: one O_DIRECT I/O, start to completion."""
        if self.retry is None:
            return (yield from self._submit_once(op, offset, size, data, core))
        return (
            yield from self.retry.run(
                self.env, lambda _n: self._submit_once(op, offset, size, data, core)
            )
        )

    def _submit_once(self, op: IoOp, offset: int, size: int, data: bytes | None, core: int):
        yield from self._pre(size)
        req = yield from self.block_layer.submit_bio(op, offset, size, data, origin_core=core)
        yield from self._post(size)
        self.completed_ops += 1
        return req

    @abc.abstractmethod
    def _pre(self, size: int):
        """Submission-side software cost."""

    @abc.abstractmethod
    def _post(self, size: int):
        """Completion-side software cost."""


class PosixSync(IoInterface):
    """pread/pwrite with O_DIRECT: blocking syscall per I/O."""

    name = "posix"

    def _pre(self, size: int):
        yield self.env.timeout(self.cost.syscall_ns)

    def _post(self, size: int):
        # IRQ fires, scheduler wakes the blocked thread: full context switch.
        yield self.env.timeout(self.cost.irq_completion_ns + self.cost.context_switch_ns)


class PosixAio(IoInterface):
    """POSIX AIO (glibc): the I/O detours through a worker thread pool.

    The paper: "POSIX AIO suffers additional overhead due to the cost of
    context switching to the AIO thread, amounting up to 60-70% overhead
    on NVMe and PMEM."
    """

    name = "posix_aio"

    def _pre(self, size: int):
        # enqueue to the AIO thread + that thread's blocking syscall
        yield self.env.timeout(self.cost.aio_thread_hop_ns + self.cost.syscall_ns)

    def _post(self, size: int):
        yield self.env.timeout(
            self.cost.irq_completion_ns
            + self.cost.context_switch_ns  # AIO thread wakes
            + self.cost.aio_thread_hop_ns  # completion notification hop back
        )


class Libaio(IoInterface):
    """Linux native AIO: io_submit / io_getevents."""

    name = "libaio"

    def _pre(self, size: int):
        yield self.env.timeout(self.cost.libaio_submit_ns)

    def _post(self, size: int):
        yield self.env.timeout(self.cost.irq_completion_ns + self.cost.libaio_getevents_ns)


class IoUring(IoInterface):
    """io_uring: shared rings amortize syscalls away."""

    name = "io_uring"

    def _pre(self, size: int):
        yield self.env.timeout(self.cost.uring_submit_ns)

    def _post(self, size: int):
        yield self.env.timeout(
            self.cost.irq_completion_ns + self.cost.uring_complete_ns + self.cost.uring_wait_ns
        )


INTERFACES = {
    "posix": PosixSync,
    "posix_aio": PosixAio,
    "libaio": Libaio,
    "io_uring": IoUring,
}


def make_interface(name: str, env: Environment, device: BlockDevice, **kw) -> IoInterface:
    """Build a kernel I/O interface by name."""
    try:
        cls = INTERFACES[name]
    except KeyError:
        raise KernelError(f"unknown interface {name!r}; choose from {sorted(INTERFACES)}") from None
    return cls(env, device, **kw)
