"""Linux block layer model (blk-mq) with pluggable in-kernel I/O schedulers.

The block layer charges the request-allocation / scheduling / dispatch /
completion bookkeeping costs that LabStor's Kernel Driver LabMod bypasses
(the paper's Fig 6 storage-API comparison), and exposes the same
hctx-selection seam the Fig 8 scheduler experiment customizes.

``submit_batch_bio`` models blk-mq plugging: a plug list of bios is
elevator-merged (front/back contiguity) into runs, each run pays the
alloc/sched/dispatch bookkeeping once and goes to the device as a single
large request.  Kernel semantics apply — an error fails the whole merged
request (bio granularity); per-constituent fault isolation is the
LabStor-path property (see mods.sched_batch).
"""

from __future__ import annotations

import abc

from ..devices.base import BlockDevice, BlockRequest, IoOp
from ..sim import Environment
from .cpu import DEFAULT_COST, CostModel

__all__ = ["KernelIoScheduler", "KernelNoop", "KernelBlkSwitch", "BlockLayer"]


class KernelIoScheduler(abc.ABC):
    """Chooses the hardware dispatch queue for each request."""

    name = "abstract"

    @abc.abstractmethod
    def select_hctx(self, layer: "BlockLayer", size: int, origin_core: int) -> int:
        ...

    def cost_ns(self, cost: CostModel) -> int:
        return cost.blk_sched_ns


class KernelNoop(KernelIoScheduler):
    """Maps requests to the hctx of the originating core (Linux none/noop)."""

    name = "linux-noop"

    def select_hctx(self, layer: "BlockLayer", size: int, origin_core: int) -> int:
        return origin_core % layer.device.nqueues


class KernelBlkSwitch(KernelIoScheduler):
    """blk-switch [20]: lane separation + least-loaded steering.

    blk-switch's core idea is per-class egress lanes: latency-critical
    (small) requests get dedicated hardware queues that throughput
    (large) requests never occupy, plus load-aware steering within a
    lane.  This prevents a latency-sensitive request from queueing
    behind a throughput app's large writes (the head-of-line blocking
    Fig 8 demonstrates for noop when colocated).
    """

    name = "linux-blk-switch"
    #: requests at or above this size ride the throughput lane
    large_threshold = 32 * 1024

    @staticmethod
    def _lanes(nqueues: int) -> int:
        """Number of queues reserved for the latency lane."""
        return max(1, nqueues // 4)

    def select_hctx(self, layer: "BlockLayer", size: int, origin_core: int) -> int:
        nq = layer.device.nqueues
        k = self._lanes(nq)
        if nq == 1:
            return 0
        if size >= self.large_threshold:
            lane = range(k, nq)           # throughput lane
        else:
            lane = range(0, k)            # dedicated latency lane
        return min(lane, key=lambda q: (layer.inflight_bytes[q], q))

    def cost_ns(self, cost: CostModel) -> int:
        # lane classification + load inspection costs more than noop's modulo
        return cost.blk_sched_ns + 400


class BlockLayer:
    """blk-mq front end over one device."""

    def __init__(
        self,
        env: Environment,
        device: BlockDevice,
        cost: CostModel = DEFAULT_COST,
        scheduler: KernelIoScheduler | None = None,
    ) -> None:
        self.env = env
        self.device = device
        self.cost = cost
        self.scheduler = scheduler or KernelNoop()
        self.inflight_bytes = [0] * device.nqueues
        self.submitted = 0
        self.merged_bios = 0  # bios absorbed into another run's request

    def set_scheduler(self, scheduler: KernelIoScheduler) -> None:
        """Swap the elevator (echo > /sys/block/.../scheduler equivalent)."""
        self.scheduler = scheduler

    def submit_bio(
        self,
        op: IoOp,
        offset: int,
        size: int,
        data: bytes | None = None,
        origin_core: int = 0,
        hctx: int | None = None,
    ):
        """Process generator: full kernel block path for one bio.

        Returns the completed :class:`BlockRequest`.  ``hctx`` overrides
        scheduler selection (used by LabStor's submit_io_to_hctx, which
        still rides the tail of this path but skips alloc+sched costs —
        see mods.drivers).
        """
        t = self.env.tracer
        sc = t.obs_span if t.obs else None
        sw_ns = self.cost.blk_alloc_ns
        yield self.env.timeout(self.cost.blk_alloc_ns)
        if hctx is None:
            sw_ns += self.scheduler.cost_ns(self.cost)
            yield self.env.timeout(self.scheduler.cost_ns(self.cost))
            hctx = self.scheduler.select_hctx(self, size, origin_core)
        yield self.env.timeout(self.cost.blk_dispatch_ns)
        req = BlockRequest(op=op, offset=offset, size=size, data=data, hctx=hctx)
        if sc is not None:
            # software block-layer time counts toward the span's queue
            # phase; the device bills its own busy window via req.obs
            sc.add_kqueue(sw_ns + self.cost.blk_dispatch_ns + self.cost.blk_complete_ns)
            req.obs = sc
        self.inflight_bytes[hctx] += size
        self.submitted += 1
        try:
            yield self.device.submit(req)
        finally:
            self.inflight_bytes[hctx] -= size
        yield self.env.timeout(self.cost.blk_complete_ns)
        return req

    # -- plugging (batched submission) ---------------------------------
    def merge_bios(self, bios, plug_max: int | None = None) -> list[dict]:
        """Elevator front/back merge of a plug list.

        ``bios`` is a sequence of ``(op, offset, size, data|None)``.
        Returns runs as ``{"op", "start", "end", "idx"}`` dicts where
        ``idx`` lists the constituent bio indices in offset order.
        ``plug_max`` caps bios per run (None = unbounded).
        """
        runs: list[dict] = []
        for i, (op, off, size, _data) in enumerate(bios):
            merged = False
            for r in runs:
                if r["op"] is not op or (plug_max is not None and len(r["idx"]) >= plug_max):
                    continue
                if off == r["end"]:
                    r["idx"].append(i)
                    r["end"] += size
                    merged = True
                    break
                if off + size == r["start"]:
                    r["idx"].insert(0, i)
                    r["start"] = off
                    merged = True
                    break
            if not merged:
                runs.append({"op": op, "start": off, "end": off + size, "idx": [i]})
        return runs

    def submit_batch_bio(self, bios, origin_core: int = 0, plug_max: int | None = None):
        """Process generator: plug-style batched submission.

        Merges ``bios`` (``(op, offset, size, data|None)`` tuples) into
        contiguous runs; each run pays the alloc + scheduler + dispatch
        bookkeeping once and is submitted as one merged request.  Software
        costs serialize (one CPU builds the requests); the device waits
        overlap.  Returns the completed per-run :class:`BlockRequest`\\ s
        in dispatch order.
        """
        t = self.env.tracer
        sc = t.obs_span if t.obs else None
        runs = self.merge_bios(bios, plug_max)
        pending: list[tuple[BlockRequest, object]] = []
        try:
            for r in runs:
                sw_ns = self.cost.blk_alloc_ns + self.scheduler.cost_ns(self.cost)
                yield self.env.timeout(sw_ns)
                size = r["end"] - r["start"]
                hctx = self.scheduler.select_hctx(self, size, origin_core)
                yield self.env.timeout(self.cost.blk_dispatch_ns)
                data = None
                if r["op"] is IoOp.WRITE:
                    data = b"".join(bios[i][3] for i in r["idx"])
                req = BlockRequest(op=r["op"], offset=r["start"], size=size,
                                   data=data, hctx=hctx)
                if sc is not None:
                    sc.add_kqueue(sw_ns + self.cost.blk_dispatch_ns
                                  + self.cost.blk_complete_ns)
                    req.obs = sc
                self.inflight_bytes[hctx] += size
                self.submitted += 1
                self.merged_bios += len(r["idx"]) - 1
                pending.append((req, self.device.submit(req)))
            for _req, done in pending:
                yield done
        finally:
            for req, _done in pending:
                self.inflight_bytes[req.hctx] -= req.size
        yield self.env.timeout(self.cost.blk_complete_ns * len(runs))
        return [req for req, _done in pending]
