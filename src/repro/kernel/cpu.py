"""CPU cores and the software cost model.

:class:`CostModel` centralizes every calibration constant in one frozen
dataclass — the nanosecond prices of syscalls, context switches, copies,
queue hops, and per-layer bookkeeping.  DESIGN.md explains how the default
values were chosen to land the paper's Fig 4(a) anatomy fractions and the
Fig 6 interface ordering.

:class:`Cpu` models a pool of cores as unit-capacity resources with
busy-time accounting; latency-sensitive workers pin to dedicated cores
(the Work Orchestrator's dedication policy), everything else shares.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import KernelError
from ..sim import Environment, Resource

__all__ = ["CostModel", "Cpu", "DEFAULT_COST"]


@dataclass(frozen=True)
class CostModel:
    """Software-path cost constants, all in nanoseconds."""

    # syscall / scheduling
    syscall_ns: int = 1200          # user->kernel->user round trip
    context_switch_ns: int = 3500   # block + wakeup (full switch)
    irq_completion_ns: int = 1500   # hardware interrupt + bottom half
    thread_spawn_ns: int = 12_000

    # data movement
    copy_per_page_ns: int = 1000    # memcpy of one 4KiB page
    cache_mgmt_ns: int = 3000       # page-cache bookkeeping per request
    shm_hop_ns: int = 950           # cross-core shared-memory queue transfer
    dax_map_ns: int = 50            # address translation on the DAX path

    # kernel block layer
    blk_alloc_ns: int = 1000        # struct request alloc + init
    blk_sched_ns: int = 600         # elevator/scheduler decision
    blk_dispatch_ns: int = 600      # hctx dispatch
    blk_complete_ns: int = 600      # completion bookkeeping

    # userspace I/O interfaces
    aio_thread_hop_ns: int = 3500   # POSIX AIO worker-thread handoff (each way)
    uring_submit_ns: int = 800      # amortized SQE handling
    uring_complete_ns: int = 500    # CQE reap
    uring_wait_ns: int = 1750       # hybrid completion wait at low qd
                                    # (amortized block/wake in io_uring_enter)
    libaio_submit_ns: int = 1200    # io_submit syscall path
    libaio_getevents_ns: int = 600  # amortized io_getevents

    # VFS / filesystem layers
    vfs_lookup_ns: int = 300        # per path component
    perm_check_ns: int = 720        # permission/ACL evaluation
    fs_meta_ns: int = 720           # inode/alloc bookkeeping per op

    # LabStor module costs
    noop_sched_ns: int = 800        # NoOp LabMod: key request to an hctx
    blkswitch_sched_ns: int = 1100  # blk-switch LabMod: load inspection
    driver_submit_ns: int = 800     # Kernel Driver LabMod submit_io_to_hctx
                                    # (kernel request-structure allocation)
    driver_poll_ns: int = 900       # poll_completions (kernel-assisted reap)
    spdk_submit_ns: int = 250       # SPDK NVMe command build
    spdk_poll_ns: int = 200
    labmod_hop_ns: int = 150        # intra-runtime LabMod-to-LabMod handoff
    runtime_request_ns: int = 2500  # worker-side request handling: parse,
                                    # namespace/registry lookups, completion
    client_dispatch_ns: int = 2200  # same walks client-side when a stack
                                    # executes synchronously (no IPC/worker)
    # batched submission: one fixed doorbell per batch + a marginal per-op
    # term replaces the per-request fixed costs, making the amortization
    # the paper measures explicit (batch of N: fixed + N * marginal)
    batch_doorbell_ns: int = 1400   # fixed per batch: doorbell ring + the
                                    # worker's batch-descriptor walk
    batch_op_ns: int = 350          # marginal per batched op: SQE build
                                    # client-side, entry decode worker-side

    # LabStor I/O-system LabMods
    labfs_create_ns: int = 9000     # log append + inode insert + fd plumbing
    labfs_meta_ns: int = 720        # block allocation + inode block logging
    labkvs_op_ns: int = 2500        # single put/get/remove op handling
    generic_fs_ns: int = 200        # client-side interception + fd table
    compress_ns_per_byte: float = 0.6  # ~zlib throughput the paper observed

    def __post_init__(self) -> None:
        # memo for copy_ns: workloads copy the same handful of sizes over
        # and over, so the float divide + round collapse to one dict hit.
        # object.__setattr__ keeps it out of the frozen dataclass's fields
        # (and out of eq/hash/repr).
        object.__setattr__(self, "_copy_cache", {})

    def copy_ns(self, size: int) -> int:
        """memcpy cost for ``size`` bytes (linear in pages)."""
        ns = self._copy_cache.get(size)
        if ns is None:
            ns = max(100, round(self.copy_per_page_ns * size / 4096))
            if len(self._copy_cache) < 4096:
                self._copy_cache[size] = ns
        return ns

    def with_overrides(self, **kw) -> "CostModel":
        return replace(self, **kw)


DEFAULT_COST = CostModel()


class Cpu:
    """A pool of cores with pinning and utilization accounting."""

    def __init__(self, env: Environment, ncores: int = 24, cost: CostModel = DEFAULT_COST) -> None:
        if ncores < 1:
            raise KernelError("need at least one core")
        self.env = env
        self.ncores = ncores
        self.cost = cost
        self.cores = [Resource(env, capacity=1) for _ in range(ncores)]
        self._pinned: set[int] = set()
        self._rr_next = 0
        self._epoch_ns = env.now

    # -- core assignment --------------------------------------------------
    def pin(self, core_id: int | None = None) -> int:
        """Reserve a core exclusively (Work Orchestrator core dedication).

        Returns the core id.  Pinning is advisory bookkeeping: the pinned
        owner still acquires the core resource around each burst, but
        other components are steered away by :meth:`pick_core`.
        """
        if core_id is None:
            for cid in range(self.ncores):
                if cid not in self._pinned:
                    self._pinned.add(cid)
                    return cid
            raise KernelError("no free core to pin")
        if core_id in self._pinned:
            raise KernelError(f"core {core_id} already pinned")
        if not 0 <= core_id < self.ncores:
            raise KernelError(f"bad core id {core_id}")
        self._pinned.add(core_id)
        return core_id

    def unpin(self, core_id: int) -> None:
        self._pinned.discard(core_id)

    def pick_core(self) -> int:
        """Round-robin over unpinned cores (falls back to any core)."""
        candidates = [c for c in range(self.ncores) if c not in self._pinned] or list(
            range(self.ncores)
        )
        core = candidates[self._rr_next % len(candidates)]
        self._rr_next += 1
        return core

    # -- execution ----------------------------------------------------------
    def consume(self, core_id: int, ns: int):
        """Process generator: occupy ``core_id`` for ``ns`` of CPU work."""
        core = self.cores[core_id % self.ncores]
        with core.request() as grant:
            yield grant
            yield self.env.timeout(ns)

    # -- accounting -----------------------------------------------------------
    def reset_accounting(self) -> None:
        """Start a fresh utilization window (per-run measurement)."""
        for core in self.cores:
            core._busy_ns = 0
            core._last_change = self.env.now
        self._epoch_ns = self.env.now

    def utilization(self, core_id: int | None = None) -> float:
        """Busy fraction since the last reset (averaged over cores if None)."""
        elapsed = self.env.now - self._epoch_ns
        if elapsed <= 0:
            return 0.0
        if core_id is not None:
            return self.cores[core_id].busy_time() / elapsed
        return sum(c.busy_time() for c in self.cores) / (elapsed * self.ncores)

    def busy_cores(self) -> float:
        """Average number of cores in use since the last reset."""
        return self.utilization() * self.ncores
