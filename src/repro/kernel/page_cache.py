"""Kernel page cache model: real cached bytes, LRU eviction, writeback.

Buffered I/O lands here first (with a copy charge — the 17% of a 4KB write
the paper's Fig 4 anatomy attributes to the page cache); dirty pages are
written back on eviction or fsync through a filesystem-supplied callback.
Read-your-writes is real: cached pages carry the actual data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generator

from ..errors import KernelError
from ..sim import Environment
from .cpu import DEFAULT_COST, CostModel

__all__ = ["PageCache", "CachedPage", "PAGE_SIZE"]

PAGE_SIZE = 4096


@dataclass
class CachedPage:
    data: bytearray
    dirty: bool = False


# key = (file_id, page_no)
_Key = tuple[int, int]

# writeback callback: (file_id, page_no, bytes) -> process generator
WritebackFn = Callable[[int, int, bytes], Generator]
# fill callback: (file_id, page_no) -> process generator returning bytes
FillFn = Callable[[int, int], Generator]


class PageCache:
    """A bounded LRU page cache with dirty tracking."""

    def __init__(
        self,
        env: Environment,
        capacity_pages: int,
        writeback: WritebackFn,
        fill: FillFn,
        cost: CostModel = DEFAULT_COST,
        writeback_run=None,
    ) -> None:
        """``writeback_run(file_id, first_page, data)`` — optional batched
        callback covering consecutive pages in one call (writeback merges
        contiguous dirty pages into single bios); falls back to per-page
        ``writeback`` when absent."""
        if capacity_pages < 1:
            raise KernelError("page cache needs capacity >= 1 page")
        self.env = env
        self.capacity_pages = capacity_pages
        self.cost = cost
        self._writeback = writeback
        self._writeback_run = writeback_run
        self._fill = fill
        self._pages: OrderedDict[_Key, CachedPage] = OrderedDict()
        # dirty pages evicted but whose writeback has not landed yet;
        # concurrent reads must see this data, not the stale device copy
        self._wb_inflight: dict[_Key, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def __len__(self) -> int:
        return len(self._pages)

    def dirty_count(self) -> int:
        return sum(1 for p in self._pages.values() if p.dirty)

    def resident(self, file_id: int, page_no: int) -> bool:
        return (file_id, page_no) in self._pages

    # -- internals --------------------------------------------------------
    def _touch(self, key: _Key) -> None:
        self._pages.move_to_end(key)

    def _flush_pairs(self, pairs: list[tuple[_Key, CachedPage]]):
        """Write back (key, page) pairs, coalescing consecutive pages of a
        file into extent writebacks when the backend supports it.
        Generator; marks pages clean and maintains the in-flight table."""
        dirty = sorted((kp for kp in pairs if kp[1].dirty), key=lambda kp: kp[0])
        if not dirty:
            return
        for key, page in dirty:
            self._wb_inflight[key] = bytes(page.data)
            page.dirty = False
        procs = []
        if self._writeback_run is not None:
            i = 0
            while i < len(dirty):
                j = i
                while (
                    j + 1 < len(dirty)
                    and dirty[j + 1][0][0] == dirty[j][0][0]        # same file
                    and dirty[j + 1][0][1] == dirty[j][0][1] + 1    # next page
                ):
                    j += 1
                file_id = dirty[i][0][0]
                first_page = dirty[i][0][1]
                data = b"".join(self._wb_inflight[k] for k, _ in dirty[i : j + 1])
                procs.append(self.env.process(self._writeback_run(file_id, first_page, data)))
                i = j + 1
        else:
            for key, _page in dirty:
                procs.append(
                    self.env.process(self._writeback(key[0], key[1], self._wb_inflight[key]))
                )
        self.writebacks += len(dirty)
        yield self.env.all_of(procs)
        for key, _page in dirty:
            self._wb_inflight.pop(key, None)

    def _evict_batch(self, n: int):
        """Evict up to ``n`` LRU pages, writing dirty ones back coalesced.

        Victims leave the map *before* the writeback I/O so concurrent
        evictors never pick the same page; the in-flight table keeps the
        data visible to readers until the writeback lands.
        """
        victims = []
        it = iter(self._pages.items())
        for _ in range(min(n, len(self._pages))):
            victims.append(next(it))
        for key, _page in victims:
            del self._pages[key]
        self.evictions += len(victims)
        yield from self._flush_pairs(victims)

    def _ensure_room(self):
        while len(self._pages) >= self.capacity_pages:
            # evict in batches so dirty neighbours coalesce into large bios
            yield self.env.process(self._evict_batch(max(1, self.capacity_pages // 64)))

    def _get_page(self, file_id: int, page_no: int, *, fill_if_missing: bool):
        """Generator returning the CachedPage (loading from backing if needed)."""
        key = (file_id, page_no)
        page = self._pages.get(key)
        if page is not None:
            self.hits += 1
            self._touch(key)
            return page
        self.misses += 1
        yield from self._ensure_room()
        inflight = self._wb_inflight.get(key)
        if inflight is not None:
            page = CachedPage(bytearray(inflight), dirty=False)
        elif fill_if_missing:
            data = yield self.env.process(self._fill(file_id, page_no))
            page = CachedPage(bytearray(data))
        else:
            page = CachedPage(bytearray(PAGE_SIZE))
        self._pages[key] = page
        return page

    # -- public API (process generators) -------------------------------------
    def write(self, file_id: int, offset: int, data: bytes):
        """Buffered write: copy into cache pages, mark dirty."""
        yield self.env.timeout(self.cost.cache_mgmt_ns + self.cost.copy_ns(len(data)))
        pos = 0
        while pos < len(data):
            page_no, in_page = divmod(offset + pos, PAGE_SIZE)
            chunk = min(PAGE_SIZE - in_page, len(data) - pos)
            # A partial overwrite of a non-resident page must read-modify-write.
            needs_fill = (in_page != 0 or chunk != PAGE_SIZE)
            page = yield from self._get_page(file_id, page_no, fill_if_missing=needs_fill)
            page.data[in_page : in_page + chunk] = data[pos : pos + chunk]
            page.dirty = True
            pos += chunk

    def read(self, file_id: int, offset: int, size: int):
        """Buffered read: serve from cache; misses fill concurrently
        (modelling readahead / plugged batch submission).

        Reads wider than the cache are processed in windows so a window's
        pages cannot be evicted before they are copied out.
        """
        yield self.env.timeout(self.cost.cache_mgmt_ns + self.cost.copy_ns(size))
        out = bytearray(size)
        window_pages = max(1, self.capacity_pages // 2)
        pos = 0
        while pos < size:
            win_first = (offset + pos) // PAGE_SIZE
            win_last = min((offset + size - 1) // PAGE_SIZE, win_first + window_pages - 1)
            # keep resident window pages hot so room-making cannot evict them
            for p in range(win_first, win_last + 1):
                if (file_id, p) in self._pages:
                    self._touch((file_id, p))
                    self.hits += 1
            missing = []
            for p in range(win_first, win_last + 1):
                key = (file_id, p)
                if key in self._pages:
                    continue
                inflight = self._wb_inflight.get(key)
                if inflight is not None:
                    yield from self._ensure_room()
                    self._pages[key] = CachedPage(bytearray(inflight))
                else:
                    missing.append(p)
            if missing:
                for _ in missing:
                    yield from self._ensure_room()
                procs = [self.env.process(self._fill(file_id, p)) for p in missing]
                yield self.env.all_of(procs)
                self.misses += len(missing)
                for p, proc in zip(missing, procs):
                    self._pages[(file_id, p)] = CachedPage(bytearray(proc.value))
            win_end_byte = min(size, (win_last + 1) * PAGE_SIZE - offset)
            while pos < win_end_byte:
                page_no, in_page = divmod(offset + pos, PAGE_SIZE)
                chunk = min(PAGE_SIZE - in_page, size - pos)
                page = self._pages[(file_id, page_no)]
                out[pos : pos + chunk] = page.data[in_page : in_page + chunk]
                pos += chunk
        return bytes(out)

    def fsync(self, file_id: int):
        """Write back every dirty page belonging to ``file_id``.

        Writebacks are submitted concurrently — fsync plugs the block
        queue and flushes the whole dirty set in one batch, which is why
        a 64KB fsync does not pay 16 serial device round trips.
        """
        pairs = [(key, page) for key, page in self._pages.items()
                 if key[0] == file_id and page.dirty]
        yield from self._flush_pairs(pairs)

    def sync_all(self):
        """Write back every dirty page (umount / global sync)."""
        yield from self._flush_pairs(list(self._pages.items()))

    def invalidate(self, file_id: int) -> None:
        """Drop all pages of a file (unlink); dirty pages are discarded."""
        for key in [k for k in self._pages if k[0] == file_id]:
            del self._pages[key]
