"""Simulated Linux kernel substrate: CPU, block layer, page cache, FSes, APIs."""

from .block_layer import BlockLayer, KernelBlkSwitch, KernelIoScheduler, KernelNoop
from .cpu import DEFAULT_COST, CostModel, Cpu
from .filesystems import (
    BLOCK_SIZE,
    Ext4Sim,
    F2fsSim,
    FILESYSTEMS,
    KernelFilesystem,
    XfsSim,
    make_filesystem,
)
from .interfaces import (
    INTERFACES,
    IoInterface,
    IoUring,
    Libaio,
    PosixAio,
    PosixSync,
    make_interface,
)
from .page_cache import PAGE_SIZE, CachedPage, PageCache

__all__ = [
    "CostModel",
    "Cpu",
    "DEFAULT_COST",
    "BlockLayer",
    "KernelIoScheduler",
    "KernelNoop",
    "KernelBlkSwitch",
    "PageCache",
    "CachedPage",
    "PAGE_SIZE",
    "KernelFilesystem",
    "Ext4Sim",
    "XfsSim",
    "F2fsSim",
    "FILESYSTEMS",
    "make_filesystem",
    "BLOCK_SIZE",
    "IoInterface",
    "PosixSync",
    "PosixAio",
    "Libaio",
    "IoUring",
    "INTERFACES",
    "make_interface",
]
