"""Functional kernel-filesystem model with per-FS locking behaviour.

These are the paper's baselines (ext4 / XFS / F2FS).  They are *functional*
— create/write/read/unlink really move bytes through the page cache and
block layer onto the device — and they carry each filesystem's metadata
locking discipline, which is what makes kernel filesystems collapse under
concurrent metadata load in the paper's Fig 7 (FxMark) experiment.

Costs: every operation pays syscall entry/exit, VFS path lookup,
permission check, and an FS-specific metadata charge; metadata mutations
additionally serialize on the journal/log lock(s) for a per-FS hold time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ...devices.base import BlockDevice, IoOp
from ...errors import FsError
from ...obs.spans import SpanContext
from ...sim import Environment, Resource
from ..block_layer import BlockLayer
from ..cpu import DEFAULT_COST, CostModel
from ..page_cache import PAGE_SIZE, PageCache

__all__ = ["Inode", "KernelFilesystem", "OpenFile"]

BLOCK_SIZE = PAGE_SIZE


@dataclass
class Inode:
    ino: int
    path: str
    size: int = 0
    nlink: int = 1
    # page_no -> device byte offset of the backing block
    blocks: dict[int, int] = field(default_factory=dict)


@dataclass
class OpenFile:
    fd: int
    inode: Inode
    pos: int = 0


class KernelFilesystem:
    """Base kernel FS: subclasses set the locking/cost profile."""

    name = "kernelfs"
    # --- per-FS tuning knobs (overridden by subclasses) -------------------
    meta_lock_shards = 1       # journal/log lock sharding
    create_hold_ns = 60_000    # lock hold time for a create/unlink transaction
    write_meta_ns = 1_500      # extent/alloc bookkeeping per data write
    journal_flush = True       # fsync issues a device flush

    def __init__(
        self,
        env: Environment,
        device: BlockDevice,
        cost: CostModel = DEFAULT_COST,
        cache_pages: int = 32_768,
    ) -> None:
        self.env = env
        self.device = device
        self.cost = cost
        self.block_layer = BlockLayer(env, device, cost)
        self.cache = PageCache(
            env, cache_pages, writeback=self._writeback_page, fill=self._fill_page,
            writeback_run=self._writeback_extent, cost=cost,
        )
        self._inodes_by_path: dict[str, Inode] = {}
        self._inodes_by_ino: dict[int, Inode] = {}
        self._ino_counter = itertools.count(1)
        self._fd_counter = itertools.count(3)
        self._fds: dict[int, OpenFile] = {}
        self._meta_locks = [Resource(env, capacity=1) for _ in range(self.meta_lock_shards)]
        # simple block allocator: bump pointer + free list
        self._next_block = BLOCK_SIZE  # block 0 reserved as superblock
        self._free_blocks: list[int] = []
        self.ops = 0

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------
    def _alloc_block(self) -> int:
        if self._free_blocks:
            return self._free_blocks.pop()
        offset = self._next_block
        if offset + BLOCK_SIZE > self.device.profile.capacity_bytes:
            raise FsError("ENOSPC", f"{self.name}: device full")
        self._next_block += BLOCK_SIZE
        return offset

    def _block_for(self, inode: Inode, page_no: int) -> int:
        offset = inode.blocks.get(page_no)
        if offset is None:
            offset = self._alloc_block()
            inode.blocks[page_no] = offset
        return offset

    # -- page cache backing callbacks -----------------------------------
    def _writeback_page(self, file_id: int, page_no: int, data: bytes):
        inode = self._inodes_by_ino.get(file_id)
        if inode is None:  # unlinked while dirty: drop the write
            return
            yield  # pragma: no cover - makes this a generator
        offset = self._block_for(inode, page_no)
        yield from self.block_layer.submit_bio(IoOp.WRITE, offset, len(data), data)
        yield self.env.timeout(self.cost.irq_completion_ns)

    def _writeback_extent(self, file_id: int, first_page: int, data: bytes):
        """Batched writeback: the dirty pages go down as one plug list;
        the block layer's elevator merges device-contiguous pages into
        single large bios (the bump allocator makes sequential files
        mostly contiguous on disk, so an extent is usually one run)."""
        inode = self._inodes_by_ino.get(file_id)
        if inode is None:
            return
            yield  # pragma: no cover - generator
        npages = len(data) // PAGE_SIZE
        bios = [
            (IoOp.WRITE, self._block_for(inode, first_page + i), PAGE_SIZE,
             data[i * PAGE_SIZE:(i + 1) * PAGE_SIZE])
            for i in range(npages)
        ]
        reqs = yield from self.block_layer.submit_batch_bio(bios)
        yield self.env.timeout(self.cost.irq_completion_ns * len(reqs))

    def _fill_page(self, file_id: int, page_no: int):
        inode = self._inodes_by_ino.get(file_id)
        if inode is None or page_no not in inode.blocks:
            return b"\x00" * PAGE_SIZE
            yield  # pragma: no cover
        req = yield from self.block_layer.submit_bio(
            IoOp.READ, inode.blocks[page_no], PAGE_SIZE
        )
        yield self.env.timeout(self.cost.irq_completion_ns)
        return req.result

    # ------------------------------------------------------------------
    # cost helpers
    # ------------------------------------------------------------------
    def _vfs_cost(self, path: str) -> int:
        ncomp = max(1, path.strip("/").count("/") + 1)
        return self.cost.vfs_lookup_ns * ncomp + self.cost.perm_check_ns

    def _enter(self, path: str):
        """Syscall entry + VFS walk + permission check."""
        self.ops += 1
        yield self.env.timeout(self.cost.syscall_ns + self._vfs_cost(path))

    def _meta_txn(self, key: int, hold_ns: int):
        """Serialize a metadata mutation on the journal/log lock."""
        lock = self._meta_locks[key % self.meta_lock_shards]
        with lock.request() as grant:
            yield grant
            yield self.env.timeout(hold_ns)

    # ------------------------------------------------------------------
    # telemetry (repro.obs)
    # ------------------------------------------------------------------
    def _obs_open(self, op: str):
        """Open a kernel-syscall span and install it as the tracer's
        *ambient* span, which the block layer reads to attribute bios.

        The kernel path has no per-request plumbing (bios don't carry the
        syscall that caused them), so attribution is via this ambient
        slot — correct for the serial measurement loops the anatomy
        experiment runs; concurrent syscalls would cross-bill and should
        be measured with telemetry off.  Returns an opaque token for
        :meth:`_obs_close` (None when telemetry is disabled).
        """
        t = self.env.tracer
        if not t.obs:
            return None
        sc = SpanContext(op=op, now=self.env.now, kind="kernel", sync=True)
        prev, t.obs_span = t.obs_span, sc
        return (sc, prev)

    def _obs_close(self, token) -> None:
        if token is None:
            return
        sc, prev = token
        t = self.env.tracer
        t.obs_span = prev
        sc.mark_complete(self.env.now)
        sc.close(self.env.now)
        t.emit(self.env.now, "obs.span", span=sc)

    # ------------------------------------------------------------------
    # POSIX-ish operations (process generators)
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._inodes_by_path

    def create(self, path: str):
        """open(path, O_CREAT|O_EXCL): returns an fd."""
        yield from self._enter(path)
        if path in self._inodes_by_path:
            raise FsError("EEXIST", path)
        ino = next(self._ino_counter)
        yield from self._meta_txn(ino, self.create_hold_ns)
        inode = Inode(ino=ino, path=path)
        self._inodes_by_path[path] = inode
        self._inodes_by_ino[ino] = inode
        return self._open_fd(inode)

    def open(self, path: str, create: bool = False):
        yield from self._enter(path)
        inode = self._inodes_by_path.get(path)
        if inode is None:
            if not create:
                raise FsError("ENOENT", path)
            ino = next(self._ino_counter)
            yield from self._meta_txn(ino, self.create_hold_ns)
            inode = Inode(ino=ino, path=path)
            self._inodes_by_path[path] = inode
            self._inodes_by_ino[ino] = inode
        return self._open_fd(inode)

    def _open_fd(self, inode: Inode) -> int:
        fd = next(self._fd_counter)
        self._fds[fd] = OpenFile(fd=fd, inode=inode)
        return fd

    def _file(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise FsError("EBADF", f"fd {fd}") from None

    def close(self, fd: int):
        self.ops += 1
        yield self.env.timeout(self.cost.syscall_ns)
        self._fds.pop(fd, None)

    def write(self, fd: int, data: bytes, offset: int | None = None):
        """Buffered pwrite/write; returns bytes written."""
        f = self._file(fd)
        self.ops += 1
        token = self._obs_open("fs.write")
        try:
            yield self.env.timeout(
                self.cost.syscall_ns + self.cost.fs_meta_ns + self.write_meta_ns
            )
            if token is not None:
                token[0].mark_dispatched(self.env.now)
            pos = f.pos if offset is None else offset
            yield self.env.process(self.cache.write(f.inode.ino, pos, data))
            end = pos + len(data)
            if offset is None:
                f.pos = end
            if end > f.inode.size:
                f.inode.size = end
            return len(data)
        finally:
            self._obs_close(token)

    def read(self, fd: int, size: int, offset: int | None = None):
        """Buffered pread/read; returns bytes (short read at EOF)."""
        f = self._file(fd)
        self.ops += 1
        token = self._obs_open("fs.read")
        try:
            yield self.env.timeout(self.cost.syscall_ns + self.cost.fs_meta_ns)
            if token is not None:
                token[0].mark_dispatched(self.env.now)
            pos = f.pos if offset is None else offset
            size = max(0, min(size, f.inode.size - pos))
            if size == 0:
                return b""
            data = yield self.env.process(self.cache.read(f.inode.ino, pos, size))
            if offset is None:
                f.pos = pos + size
            return data
        finally:
            self._obs_close(token)

    def seek(self, fd: int, pos: int):
        f = self._file(fd)
        self.ops += 1
        yield self.env.timeout(self.cost.syscall_ns)
        f.pos = pos

    def truncate(self, fd: int, size: int):
        f = self._file(fd)
        self.ops += 1
        yield self.env.timeout(self.cost.syscall_ns + self.cost.fs_meta_ns)
        f.inode.size = size

    def fsync(self, fd: int):
        f = self._file(fd)
        self.ops += 1
        token = self._obs_open("fs.fsync")
        try:
            yield self.env.timeout(self.cost.syscall_ns)
            if token is not None:
                token[0].mark_dispatched(self.env.now)
            yield self.env.process(self.cache.fsync(f.inode.ino))
            if self.journal_flush:
                yield from self.block_layer.submit_bio(IoOp.FLUSH, 0, 0)
        finally:
            self._obs_close(token)

    def unlink(self, path: str):
        yield from self._enter(path)
        inode = self._inodes_by_path.get(path)
        if inode is None:
            raise FsError("ENOENT", path)
        yield from self._meta_txn(inode.ino, self.create_hold_ns)
        del self._inodes_by_path[path]
        del self._inodes_by_ino[inode.ino]
        self.cache.invalidate(inode.ino)
        for offset in inode.blocks.values():
            self._free_blocks.append(offset)

    def rename(self, old: str, new: str):
        yield from self._enter(old)
        inode = self._inodes_by_path.get(old)
        if inode is None:
            raise FsError("ENOENT", old)
        yield from self._meta_txn(inode.ino, self.create_hold_ns)
        del self._inodes_by_path[old]
        inode.path = new
        self._inodes_by_path[new] = inode

    def stat(self, path: str):
        yield from self._enter(path)
        inode = self._inodes_by_path.get(path)
        if inode is None:
            raise FsError("ENOENT", path)
        return {"ino": inode.ino, "size": inode.size, "nlink": inode.nlink}

    # convenience for tests / workloads --------------------------------------
    def write_file(self, path: str, data: bytes):
        """open(create)+write+close in one step."""
        fd = yield self.env.process(self.open(path, create=True))
        yield self.env.process(self.write(fd, data, offset=0))
        yield self.env.process(self.close(fd))

    def read_file(self, path: str):
        fd = yield self.env.process(self.open(path))
        inode = self._fds[fd].inode
        data = yield self.env.process(self.read(fd, inode.size, offset=0))
        yield self.env.process(self.close(fd))
        return data
