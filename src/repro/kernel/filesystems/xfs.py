"""XFS model: allocation groups shard metadata locking."""

from __future__ import annotations

from .base import KernelFilesystem

__all__ = ["XfsSim"]


class XfsSim(KernelFilesystem):
    """XFS: per-AG locking allows limited metadata concurrency.

    Inode allocation spreads over allocation groups (2 shards here —
    the effective concurrency FxMark observes is far below the AG count
    because of the shared CIL/log), with a slightly larger per-op hold
    than ext4.
    """

    name = "xfs"
    meta_lock_shards = 2
    create_hold_ns = 70_000
    write_meta_ns = 1_800
    journal_flush = True
