"""F2FS model: log-structured flash FS with a global sbi lock."""

from __future__ import annotations

from .base import KernelFilesystem

__all__ = ["F2fsSim"]


class F2fsSim(KernelFilesystem):
    """F2FS: cheap appends but a global f2fs_lock_op() for checkpoints.

    Metadata mutations funnel through the per-sb cp_rwsem, so creates
    serialize like ext4 but with a longer hold (node page + NAT updates).
    """

    name = "f2fs"
    meta_lock_shards = 1
    create_hold_ns = 75_000
    write_meta_ns = 1_200   # log-structured data path is cheap
    journal_flush = False   # checkpoints are periodic, not per-fsync
