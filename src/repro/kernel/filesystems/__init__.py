"""Kernel filesystem baselines (ext4 / XFS / F2FS)."""

from .base import BLOCK_SIZE, Inode, KernelFilesystem, OpenFile
from .ext4 import Ext4Sim
from .f2fs import F2fsSim
from .xfs import XfsSim

FILESYSTEMS = {"ext4": Ext4Sim, "xfs": XfsSim, "f2fs": F2fsSim}


def make_filesystem(name, env, device, **kw):
    """Build a kernel filesystem baseline by name ('ext4'|'xfs'|'f2fs')."""
    try:
        cls = FILESYSTEMS[name]
    except KeyError:
        raise ValueError(f"unknown filesystem {name!r}; choose from {sorted(FILESYSTEMS)}") from None
    return cls(env, device, **kw)


__all__ = [
    "KernelFilesystem",
    "Inode",
    "OpenFile",
    "BLOCK_SIZE",
    "Ext4Sim",
    "XfsSim",
    "F2fsSim",
    "FILESYSTEMS",
    "make_filesystem",
]
