"""ext4 model: JBD2 journal serializes metadata transactions."""

from __future__ import annotations

from .base import KernelFilesystem

__all__ = ["Ext4Sim"]


class Ext4Sim(KernelFilesystem):
    """ext4: a single running journal transaction gates all metadata.

    JBD2 batches handles into one running transaction protected by
    j_state_lock; concurrent creators serialize on it, which is the
    scaling wall FxMark's MWCL/create tests expose (paper Fig 7).
    """

    name = "ext4"
    meta_lock_shards = 1
    create_hold_ns = 60_000
    write_meta_ns = 1_500
    journal_flush = True
