"""Unit tests for the kernel I/O interface cost models (Fig 6 baselines)."""

import pytest

from repro.devices import IoOp, make_device
from repro.errors import KernelError
from repro.kernel import INTERFACES, make_interface
from repro.sim import Environment


def one_op_latency(name, device="nvme", size=4096, op=IoOp.WRITE):
    env = Environment()
    dev = make_device(env, device)
    iface = make_interface(name, env, dev)

    def proc():
        data = b"i" * size if op is IoOp.WRITE else None
        yield from iface.submit(op, 0, size, data)
        return env.now

    return env.run(env.process(proc()))


def test_unknown_interface_rejected():
    env = Environment()
    dev = make_device(env, "nvme")
    with pytest.raises(KernelError, match="unknown interface"):
        make_interface("io_warp", env, dev)


def test_all_interfaces_complete_an_op():
    for name in INTERFACES:
        assert one_op_latency(name) > 0


def test_interface_ordering_on_nvme_4k():
    """The software-overhead ordering behind Fig 6."""
    lat = {name: one_op_latency(name) for name in INTERFACES}
    assert lat["posix_aio"] > lat["posix"]          # thread-pool hops
    assert lat["posix"] > lat["libaio"]             # blocking wait vs reap
    assert lat["posix"] > lat["io_uring"]           # syscall-per-op vs rings
    # all interfaces pay at least the raw device service time
    env = Environment()
    dev = make_device(env, "nvme")
    device_only = dev.profile.service_ns(IoOp.WRITE, 4096)
    assert min(lat.values()) > device_only


def test_interface_gap_shrinks_with_size():
    def spread(size):
        lat = {n: one_op_latency(n, size=size) for n in ("posix", "io_uring")}
        return lat["posix"] / lat["io_uring"] - 1

    assert spread(128 * 1024) < spread(4096)


def test_reads_return_written_data_through_interfaces():
    env = Environment()
    dev = make_device(env, "nvme")
    iface = make_interface("libaio", env, dev)

    def proc():
        yield from iface.submit(IoOp.WRITE, 4096, 4096, b"q" * 4096)
        req = yield from iface.submit(IoOp.READ, 4096, 4096)
        return req.result

    assert env.run(env.process(proc())) == b"q" * 4096
    assert iface.completed_ops == 2


def test_interfaces_work_on_every_device_kind():
    for device in ("nvme", "ssd", "hdd", "pmem"):
        assert one_op_latency("posix", device=device) > 0
