"""Tests for repro.kernel.cpu (cores, pinning, utilization, cost model)."""

import pytest

from repro.errors import KernelError
from repro.kernel import CostModel, Cpu, DEFAULT_COST
from repro.sim import Environment


def test_cost_model_copy_scales_with_pages():
    c = CostModel()
    assert c.copy_ns(4096) == c.copy_per_page_ns
    assert c.copy_ns(8192) == 2 * c.copy_per_page_ns
    assert c.copy_ns(1) >= 100  # floor


def test_cost_model_overrides():
    c = DEFAULT_COST.with_overrides(syscall_ns=5000)
    assert c.syscall_ns == 5000
    assert DEFAULT_COST.syscall_ns != 5000  # frozen original untouched


def test_cpu_consume_occupies_core():
    env = Environment()
    cpu = Cpu(env, ncores=1)
    finish = []

    def worker(name):
        yield env.process(cpu.consume(0, 100))
        finish.append((env.now, name))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert finish == [(100, "a"), (200, "b")]


def test_cpu_different_cores_parallel():
    env = Environment()
    cpu = Cpu(env, ncores=2)
    finish = []

    def worker(core):
        yield env.process(cpu.consume(core, 100))
        finish.append(env.now)

    env.process(worker(0))
    env.process(worker(1))
    env.run()
    assert finish == [100, 100]


def test_pin_reserves_distinct_cores():
    env = Environment()
    cpu = Cpu(env, ncores=3)
    assert cpu.pin() == 0
    assert cpu.pin() == 1
    cpu.unpin(0)
    assert cpu.pin() == 0


def test_pin_specific_core_twice_rejected():
    env = Environment()
    cpu = Cpu(env, ncores=2)
    cpu.pin(1)
    with pytest.raises(KernelError):
        cpu.pin(1)


def test_pin_exhaustion():
    env = Environment()
    cpu = Cpu(env, ncores=1)
    cpu.pin()
    with pytest.raises(KernelError):
        cpu.pin()


def test_pick_core_avoids_pinned():
    env = Environment()
    cpu = Cpu(env, ncores=3)
    cpu.pin(0)
    picks = {cpu.pick_core() for _ in range(10)}
    assert 0 not in picks
    assert picks <= {1, 2}


def test_utilization_accounting():
    env = Environment()
    cpu = Cpu(env, ncores=2)

    def worker():
        yield env.process(cpu.consume(0, 500))

    def idle_clock():
        yield env.timeout(1000)

    env.process(worker())
    env.process(idle_clock())
    env.run()
    # core0 busy 500/1000, core1 idle => average 25%
    assert cpu.utilization(0) == pytest.approx(0.5)
    assert cpu.utilization(1) == 0.0
    assert cpu.utilization() == pytest.approx(0.25)
    assert cpu.busy_cores() == pytest.approx(0.5)


def test_reset_accounting_starts_fresh_window():
    env = Environment()
    cpu = Cpu(env, ncores=1)

    def phase1():
        yield env.process(cpu.consume(0, 100))

    env.process(phase1())
    env.run()
    cpu.reset_accounting()

    def phase2():
        yield env.timeout(100)

    env.process(phase2())
    env.run()
    assert cpu.utilization() == 0.0


def test_zero_cores_rejected():
    env = Environment()
    with pytest.raises(KernelError):
        Cpu(env, ncores=0)
