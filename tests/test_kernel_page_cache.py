"""Tests for the kernel page cache (LRU, dirty writeback, fill)."""

import pytest

from repro.errors import KernelError
from repro.kernel.page_cache import PAGE_SIZE, PageCache
from repro.sim import Environment


class FakeBacking:
    """Backing 'device' recording writebacks and serving fills."""

    def __init__(self, env):
        self.env = env
        self.pages = {}
        self.writeback_log = []
        self.fill_log = []

    def writeback(self, file_id, page_no, data):
        yield self.env.timeout(10)
        self.pages[(file_id, page_no)] = data
        self.writeback_log.append((file_id, page_no))

    def fill(self, file_id, page_no):
        yield self.env.timeout(10)
        self.fill_log.append((file_id, page_no))
        return self.pages.get((file_id, page_no), b"\x00" * PAGE_SIZE)


def make_cache(env, capacity=8):
    backing = FakeBacking(env)
    cache = PageCache(env, capacity, writeback=backing.writeback, fill=backing.fill)
    return cache, backing


def run(env, gen):
    return env.run(env.process(gen))


def test_write_then_read_hits_cache():
    env = Environment()
    cache, backing = make_cache(env)

    def proc():
        yield env.process(cache.write(1, 0, b"abc" * 100))
        data = yield env.process(cache.read(1, 0, 300))
        return data

    assert run(env, proc()) == b"abc" * 100
    # the sub-page write may RMW-fill once; the read itself must hit
    fills_after_write = len(backing.fill_log)
    assert fills_after_write <= 1
    assert cache.hits >= 1


def test_read_miss_fills_from_backing():
    env = Environment()
    cache, backing = make_cache(env)
    backing.pages[(7, 0)] = b"\x42" * PAGE_SIZE

    def proc():
        data = yield env.process(cache.read(7, 0, 16))
        return data

    assert run(env, proc()) == b"\x42" * 16
    assert backing.fill_log == [(7, 0)]
    assert cache.misses == 1


def test_eviction_writes_back_dirty_lru():
    env = Environment()
    cache, backing = make_cache(env, capacity=2)

    def proc():
        yield env.process(cache.write(1, 0 * PAGE_SIZE, b"a" * PAGE_SIZE))
        yield env.process(cache.write(1, 1 * PAGE_SIZE, b"b" * PAGE_SIZE))
        yield env.process(cache.write(1, 2 * PAGE_SIZE, b"c" * PAGE_SIZE))  # evicts page 0

    run(env, proc())
    assert backing.writeback_log == [(1, 0)]
    assert backing.pages[(1, 0)] == b"a" * PAGE_SIZE
    assert cache.evictions == 1
    assert not cache.resident(1, 0)


def test_evicted_page_readable_again():
    env = Environment()
    cache, backing = make_cache(env, capacity=2)

    def proc():
        yield env.process(cache.write(1, 0, b"x" * PAGE_SIZE))
        yield env.process(cache.write(1, PAGE_SIZE, b"y" * PAGE_SIZE))
        yield env.process(cache.write(1, 2 * PAGE_SIZE, b"z" * PAGE_SIZE))
        data = yield env.process(cache.read(1, 0, PAGE_SIZE))  # must refill
        return data

    assert run(env, proc()) == b"x" * PAGE_SIZE


def test_partial_overwrite_of_nonresident_page_rmw():
    env = Environment()
    cache, backing = make_cache(env)
    backing.pages[(3, 0)] = b"\x11" * PAGE_SIZE

    def proc():
        yield env.process(cache.write(3, 100, b"\x22" * 10))
        data = yield env.process(cache.read(3, 0, 120))
        return data

    data = run(env, proc())
    assert data[:100] == b"\x11" * 100
    assert data[100:110] == b"\x22" * 10
    assert data[110:] == b"\x11" * 10
    assert backing.fill_log == [(3, 0)]  # read-modify-write pulled the page


def test_fsync_flushes_only_that_file():
    env = Environment()
    cache, backing = make_cache(env)

    def proc():
        yield env.process(cache.write(1, 0, b"a" * PAGE_SIZE))
        yield env.process(cache.write(2, 0, b"b" * PAGE_SIZE))
        yield env.process(cache.fsync(1))

    run(env, proc())
    assert backing.writeback_log == [(1, 0)]
    assert cache.dirty_count() == 1  # file 2 still dirty


def test_fsync_is_idempotent():
    env = Environment()
    cache, backing = make_cache(env)

    def proc():
        yield env.process(cache.write(1, 0, b"a" * 100))
        yield env.process(cache.fsync(1))
        yield env.process(cache.fsync(1))

    run(env, proc())
    assert backing.writeback_log == [(1, 0)]  # second fsync found nothing dirty


def test_sync_all_flushes_everything():
    env = Environment()
    cache, backing = make_cache(env)

    def proc():
        yield env.process(cache.write(1, 0, b"a" * 10))
        yield env.process(cache.write(2, 0, b"b" * 10))
        yield env.process(cache.sync_all())

    run(env, proc())
    assert sorted(backing.writeback_log) == [(1, 0), (2, 0)]
    assert cache.dirty_count() == 0


def test_invalidate_drops_dirty_pages():
    env = Environment()
    cache, backing = make_cache(env)

    def proc():
        yield env.process(cache.write(9, 0, b"gone" * 10))

    run(env, proc())
    cache.invalidate(9)
    assert len(cache) == 0
    assert backing.writeback_log == []  # dirty data was discarded, not flushed


def test_capacity_validation():
    env = Environment()
    with pytest.raises(KernelError):
        PageCache(env, 0, writeback=None, fill=None)


def test_lru_order_follows_access():
    env = Environment()
    cache, backing = make_cache(env, capacity=2)

    def proc():
        yield env.process(cache.write(1, 0, b"a" * PAGE_SIZE))            # page A
        yield env.process(cache.write(1, PAGE_SIZE, b"b" * PAGE_SIZE))   # page B
        yield env.process(cache.read(1, 0, 10))                          # touch A
        yield env.process(cache.write(1, 2 * PAGE_SIZE, b"c" * PAGE_SIZE))  # evicts B

    run(env, proc())
    assert backing.writeback_log == [(1, 1)]
    assert cache.resident(1, 0)
