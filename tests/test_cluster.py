"""Cluster-scale LabStor: builder API, fabric, placement, failover,
and the E14 determinism contract."""

import hashlib
import json

import pytest

from repro.cluster import (
    FabricCost,
    FabricTransport,
    HashRing,
    NetworkFabric,
    ShardedKVS,
    cluster,
)
from repro.core import RuntimeConfig
from repro.errors import FabricError, FsError, LabStorError, QuorumError
from repro.sim import Environment
from repro.units import msec, usec

FAST_CRASH = RuntimeConfig(nworkers=1, restart_wait_ns=int(usec(50)))


def _run(cl, gen):
    return cl.run(cl.process(gen))


# ----------------------------------------------------------------------
# fabric
# ----------------------------------------------------------------------
class TestFabric:
    def test_serialize_ns_scales_with_bytes(self):
        cost = FabricCost(bw_bytes_per_s=1e9)
        assert cost.serialize_ns(1000) == 1000
        assert cost.serialize_ns(0) == 0

    def test_link_transfer_pays_serialization_then_latency(self):
        env = Environment()
        fabric = NetworkFabric(env, FabricCost(link_lat_ns=500,
                                               bw_bytes_per_s=1e9))
        fabric.add_link("a", "b")
        link = fabric.link("a", "b")

        def go():
            yield from link.transfer(2000)

        env.run(env.process(go()))
        assert env.now == 2000 + 500
        assert link.transfers == 1 and link.bytes_moved == 2000

    def test_concurrent_transfers_queue_on_the_wire(self):
        env = Environment()
        fabric = NetworkFabric(env, FabricCost(link_lat_ns=100,
                                               bw_bytes_per_s=1e9))
        fabric.add_link("a", "b")
        link = fabric.link("a", "b")

        def one():
            yield from link.transfer(1000)

        p1 = env.process(one())
        p2 = env.process(one())
        env.run(p1)
        env.run(p2)
        # second message serializes behind the first (1000 + 1000) but the
        # propagation terms overlap: total 2000 + 100, not 2 * 1100
        assert env.now == 2100

    def test_missing_link_raises_fabric_error(self):
        env = Environment()
        fabric = NetworkFabric(env)
        fabric.add_link("a", "b", bidirectional=False)
        assert fabric.connected("a", "b")
        assert not fabric.connected("b", "a")
        with pytest.raises(FabricError, match="no fabric link b->a"):
            fabric.link("b", "a")

    def test_self_link_rejected(self):
        fabric = NetworkFabric(Environment())
        with pytest.raises(FabricError, match="needs no link to itself"):
            fabric.add_link("a", "a")

    def test_transport_local_peer_is_free_and_unknown_peer_raises(self):
        env = Environment()
        fabric = NetworkFabric(env)
        fabric.add_link("home", "far")
        tr = FabricTransport(fabric, "home", {"mds": "far", 0: "home"})

        def local():
            yield from tr.transfer(0, 4096)

        env.run(env.process(local()))
        assert env.now == 0  # node-local I/O crosses no wire

        def bogus():
            yield from tr.transfer("nope", 1)

        with pytest.raises(FabricError, match="no peer 'nope'"):
            env.run(env.process(bogus()))


# ----------------------------------------------------------------------
# consistent-hash placement
# ----------------------------------------------------------------------
class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(["n0", "n1", "n2"])
        b = HashRing(["n0", "n1", "n2"])
        for i in range(64):
            assert a.preference(f"k{i}", 2) == b.preference(f"k{i}", 2)

    def test_preference_is_distinct_and_sized(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        for i in range(64):
            pref = ring.preference(f"key{i}", 3)
            assert len(pref) == 3 and len(set(pref)) == 3

    def test_failure_domains_diversify_replicas(self):
        ring = HashRing([("a", "rack-1"), ("b", "rack-1"), ("c", "rack-2")])
        for i in range(64):
            pref = ring.preference(f"key{i}", 2)
            assert {ring.domains[n] for n in pref} == {"rack-1", "rack-2"}

    def test_every_node_owns_some_keys(self):
        ring = HashRing(["n0", "n1", "n2", "n3"])
        owners = {ring.primary(f"key{i}") for i in range(256)}
        assert owners == {"n0", "n1", "n2", "n3"}

    def test_too_many_replicas_raises(self):
        ring = HashRing(["n0", "n1"])
        with pytest.raises(QuorumError, match="cannot place 3 replicas"):
            ring.preference("k", 3)

    def test_empty_ring_raises(self):
        with pytest.raises(QuorumError):
            HashRing([])


# ----------------------------------------------------------------------
# builder API
# ----------------------------------------------------------------------
class TestClusterBuilder:
    def test_fluent_chain_builds_nodes_stacks_and_services(self):
        cl = (
            cluster(seed=3)
            .node("n0").stack("kvs::/svc").kvs(variant="min").device("nvme")
            .node("n1")
            .build()
        )
        assert sorted(cl.nodes) == ["n0", "n1"]
        assert cl.services == {"kvs::/svc": "n0"}
        assert cl.owner_of("kvs::/svc") == "n0"
        assert cl.owner_of("kvs::/svc/deep/key") == "n0"
        # default topology is a full mesh: both directed routes exist
        assert cl.route("n0", "n1") is not None
        assert cl.route("n1", "n0") is not None
        cl.shutdown()

    def test_stack_scope_requires_a_node(self):
        with pytest.raises(LabStorError, match="call node"):
            cluster().stack("kvs::/x")

    def test_duplicate_node_rejected(self):
        b = cluster().node("n0")
        with pytest.raises(LabStorError, match="already in cluster"):
            b.node("n0")

    def test_topology_freezes_after_build(self):
        cl = cluster().node("n0").build()
        with pytest.raises(LabStorError, match="frozen"):
            cl.add_node("n1")
        cl.shutdown()

    def test_explicit_links_only_routes_declared_pairs(self):
        cl = (
            cluster()
            .node("a").node("b").node("c")
            .link("a", "b")
            .build()
        )
        assert cl.route("a", "b") and cl.route("b", "a")
        with pytest.raises(FabricError, match="no route a->c"):
            cl.route("a", "c")
        cl.shutdown()

    def test_link_unknown_node_rejected(self):
        b = cluster().node("a")
        with pytest.raises(FabricError, match="unknown node 'z'"):
            b.link("a", "z")

    def test_owner_of_unregistered_path_raises(self):
        cl = cluster().node("n0").build()
        with pytest.raises(LabStorError, match="no cluster service owns"):
            cl.owner_of("kvs::/nowhere")
        cl.shutdown()

    def test_conflicting_service_registration_rejected(self):
        cl = cluster().node("n0").node("n1").build()
        cl.register_service("kvs::/x", "n0")
        cl.register_service("kvs::/x", "n0")  # same owner: idempotent
        with pytest.raises(LabStorError, match="already registered"):
            cl.register_service("kvs::/x", "n1")
        cl.shutdown()


# ----------------------------------------------------------------------
# cross-node calls
# ----------------------------------------------------------------------
class TestRouting:
    def test_remote_call_crosses_fabric_and_conserves_nic_qp(self):
        cl = (
            cluster(seed=5)
            .node("n0")
            .node("n1").stack("kvs::/far").kvs(variant="min").device("nvme")
            .build()
        )
        c = cl.client("n0")
        from repro.core.requests import LabRequest

        def go():
            yield from c.call("kvs::/far",
                              LabRequest(op="kvs.put",
                                         payload={"key": "k", "value": b"v"}))
            return (yield from c.call(
                "kvs::/far", LabRequest(op="kvs.get", payload={"key": "k"})))

        assert _run(cl, go()) == b"v"
        route = cl.route("n0", "n1")
        assert route.remote_calls == 2 and route.nacks == 0
        assert route.qp.owner == "fabric:n0->n1"
        assert cl.fabric.stats()["n0->n1"]["transfers"] == 2
        cl.shutdown()
        assert route.qp.submitted_total == route.qp.completed_total
        assert route.qp.inflight == 0

    def test_remote_error_comes_back_as_nack(self):
        cl = cluster(seed=5).node("n0").node("n1").build()
        c = cl.client("n0")
        from repro.core.requests import LabRequest

        def go():
            yield from c.call_on("n1", "kvs::/missing",
                                 LabRequest(op="kvs.get",
                                            payload={"key": "k"}))

        with pytest.raises(LabStorError):
            _run(cl, go())
        route = cl.route("n0", "n1")
        assert route.nacks == 1
        # conservation holds even for the failed op
        assert route.qp.submitted_total == route.qp.completed_total
        cl.shutdown()

    def test_local_call_never_touches_the_fabric(self):
        cl = (
            cluster(seed=5)
            .node("n0").stack("kvs::/near").kvs(variant="min").device("nvme")
            .node("n1")
            .build()
        )
        c = cl.client("n0")
        from repro.core.requests import LabRequest

        def go():
            yield from c.call("kvs::/near",
                              LabRequest(op="kvs.put",
                                         payload={"key": "k", "value": b"v"}))

        _run(cl, go())
        assert c.remote_calls == 0
        assert all(s["transfers"] == 0 for s in cl.fabric.stats().values())
        cl.shutdown()


# ----------------------------------------------------------------------
# sharded KVS: replication, quorum, failover
# ----------------------------------------------------------------------
class TestShardedKVS:
    def _cluster(self, n=3, **kw):
        b = cluster(seed=kw.pop("seed", 7))
        for i in range(n):
            b.node(f"n{i}", config=FAST_CRASH,
                   failure_domain=f"rack-{i}")
        return b.build()

    def test_put_get_roundtrip_replicated(self):
        cl = self._cluster(3)
        kvs = cl.shard_kvs("kvs::/t", replicas=3)

        def go():
            for i in range(10):
                yield from kvs.put(f"k{i}", bytes([i]) * 32)
            out = []
            for i in range(10):
                out.append((yield from kvs.get(f"k{i}")))
            return out

        vals = _run(cl, go())
        assert vals == [bytes([i]) * 32 for i in range(10)]
        cl.shutdown()

    def test_remove_and_exists_respect_quorum(self):
        from repro.errors import FsError

        cl = self._cluster(3)
        kvs = cl.shard_kvs("kvs::/t", replicas=2)

        def go():
            yield from kvs.put("gone", b"x")
            assert (yield from kvs.exists("gone"))
            yield from kvs.remove("gone")

        _run(cl, go())

        def read_gone():
            yield from kvs.get("gone")

        # a removed key answers ENOENT, same as a plain GenericKVS get
        with pytest.raises(FsError, match="ENOENT"):
            _run(cl, read_gone())
        cl.shutdown()

    def test_gateways_on_different_nodes_agree_on_placement(self):
        cl = self._cluster(3)
        kvs = cl.shard_kvs("kvs::/t", replicas=2)
        other = kvs.bind(cl.client("n2"))

        def go():
            yield from kvs.put("shared", b"payload")
            return (yield from other.get("shared"))

        assert _run(cl, go()) == b"payload"
        cl.shutdown()

    def test_replica_node_killed_by_fault_plan_quorum_reads_survive(self):
        """The acceptance regression test: a repro.faults power cut takes
        a replica node down; reads keep succeeding off the survivors."""
        cl = self._cluster(3)
        kvs = cl.shard_kvs("kvs::/t", replicas=2, timeout_ns=int(msec(1)))
        cut_at = int(msec(3))
        cl.install_faults(f"power_cut:at={cut_at}", node="n1")
        nkeys = 16
        blob = {f"k{i}": bytes([i + 1]) * 48 for i in range(nkeys)}

        def go():
            for k, v in blob.items():
                yield from kvs.put(k, v)
            assert cl.env.now < cut_at, "workload must finish before the cut"
            yield cl.env.timeout(cut_at - cl.env.now + int(usec(100)))
            assert not cl.nodes["n1"].online
            out = {}
            for k in blob:
                out[k] = yield from kvs.get(k)
            return out

        out = _run(cl, go())
        assert out == blob
        # some keys replicate on n1, so the read fan-out really did fail
        # over rather than dodging the dead node by luck
        assert any("n1" in kvs.ring.preference(k, 2) for k in blob)
        cl.shutdown()

    def _outage_rejoin(self, *, anti_entropy):
        """Shared driver: n1 power-cut + restart, keys overwritten (and
        one removed) during the outage, then n0 dies so only n1 can
        answer for {n0, n1}-placed keys.  Returns what those reads saw."""
        cl = self._cluster(3)
        kvs = cl.shard_kvs("kvs::/ae", replicas=2, quorum=1,
                           timeout_ns=int(msec(1)),
                           anti_entropy=anti_entropy)
        cut_at = int(msec(3))
        nkeys = 24
        old = {f"k{i}": bytes([i + 1]) * 48 for i in range(nkeys)}
        new = {k: v[::-1] + b"!" for k, v in old.items()}
        # the keys only n1 can serve once n0 is gone
        pair = [k for k in old
                if set(kvs.ring.preference(k, 2)) == {"n0", "n1"}]
        assert pair, "placement left no {n0, n1} keys to test with"
        removed = pair[-1]
        # a crashed node's SHM queues survive (Section III-C3), so a
        # power cut alone would replay outage-era submissions at restart;
        # qp_reject models those submissions dying at the dead node's
        # NIC — the budget covers exactly the outage ops that replicate
        # on n1, leaving resync repairs unimpeded
        n1_ops = sum(1 for k in old if "n1" in kvs.ring.preference(k, 2))
        cl.install_faults(
            f"power_cut:at={cut_at},restart_after={int(msec(1))};"
            f"qp_reject:probability=1.0,at={cut_at},count={n1_ops}",
            node="n1")
        cl.install_faults(f"power_cut:at={int(msec(16))}", node="n0")

        def go():
            for k, v in old.items():
                yield from kvs.put(k, v)
            assert cl.env.now < cut_at
            yield cl.env.timeout(cut_at - cl.env.now + int(usec(100)))
            assert not cl.nodes["n1"].online
            for k, v in new.items():  # acked by survivors only
                if k == removed:
                    yield from kvs.remove(k)
                else:
                    yield from kvs.put(k, v)
            yield cl.nodes["n1"].runtime.online_event()
            # give the resync daemon room to finish before n0 dies
            yield cl.env.timeout(int(msec(5)))
            if anti_entropy:
                assert kvs.resyncs == 1 and not kvs._stale
            yield cl.env.timeout(int(msec(16)) - cl.env.now + int(usec(100)))
            assert not cl.nodes["n0"].online
            out = {}
            for k in pair:
                if k == removed:
                    continue
                out[k] = yield from kvs.get(k)
            try:
                yield from kvs.get(removed)
            except FsError:
                out[removed] = None
            else:
                out[removed] = "present"
            return out

        out = _run(cl, go())
        cl.shutdown()
        return kvs, pair, removed, old, new, out

    def test_anti_entropy_resyncs_rejoined_replica_from_quorum(self):
        """S2: a recovered replica is read-quarantined until a resync
        daemon write-repairs outage-era updates (and replays the
        deletion) from the healthy quorum — reads served by the rejoined
        node return the new values."""
        kvs, pair, removed, _old, new, out = self._outage_rejoin(
            anti_entropy=True)
        for k in pair:
            if k == removed:
                assert out[k] is None, "deletion was not replayed on n1"
            else:
                assert out[k] == new[k], f"{k} served stale data after rejoin"
        assert kvs.repaired >= len(pair) - 1

    def test_without_anti_entropy_rejoined_replica_serves_stale_data(self):
        """The contrast run: same outage, no resync — the rejoined
        replica answers from its own crash-recovered log, i.e. the
        pre-outage values (why S2 exists)."""
        kvs, pair, removed, old, new, out = self._outage_rejoin(
            anti_entropy=False)
        assert kvs.resyncs == 0
        stale = [k for k in pair if out[k] == old[k]]
        assert stale, "expected at least one stale read off the rejoined node"
        assert out[removed] == "present", "removal should be missing on n1"

    def test_write_quorum_unreachable_raises_quorum_error(self):
        cl = self._cluster(2)
        kvs = cl.shard_kvs("kvs::/t", replicas=2, quorum=2,
                           timeout_ns=int(msec(1)))
        cl.install_faults(f"power_cut:at={int(usec(100))}", node="n1")

        def go():
            yield cl.env.timeout(int(usec(200)))
            yield from kvs.put("doomed", b"x")

        with pytest.raises(QuorumError, match="quorum 2/2 unreachable"):
            _run(cl, go())
        assert kvs.quorum_failures == 1
        cl.shutdown()

    def test_replica_bounds_validated(self):
        cl = self._cluster(2)
        with pytest.raises(QuorumError, match="ring has 2"):
            cl.shard_kvs("kvs::/t", replicas=3)
        with pytest.raises(QuorumError, match="outside"):
            cl.shard_kvs("kvs::/u", replicas=2, quorum=3)
        cl.shutdown()

    def test_sharding_requires_built_cluster(self):
        b = cluster().node("n0")
        with pytest.raises(LabStorError, match="build"):
            b._cluster.shard_kvs("kvs::/t")
        b.build().shutdown()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def _rows_digest(rows) -> str:
    return hashlib.sha256(
        json.dumps(rows, sort_keys=True).encode()
    ).hexdigest()


class TestClusterDeterminism:
    def test_cluster_scenario_registered_and_digest_stable(self):
        from repro.sim.check import SCENARIOS, run_scenario

        assert "cluster" in SCENARIOS
        d1, r1 = run_scenario("cluster")
        d2, r2 = run_scenario("cluster")
        assert d1 == d2
        assert not r1["violations"] and not r2["violations"]
        assert r1["result"]["failovers"] > 0
        assert r1["result"]["remote_calls"] > 0

    def test_e14_digest_identical_across_runs_and_process_counts(self):
        from repro.experiments.cluster_scaling import sweep_cluster_scaling

        kw = dict(node_counts=(1, 2), replica_counts=(1,),
                  nclients=8, ops_per_client=6, base_seed=42)
        serial_1 = sweep_cluster_scaling(processes=1, **kw)
        serial_2 = sweep_cluster_scaling(processes=1, **kw)
        parallel = sweep_cluster_scaling(processes=2, **kw)
        d = _rows_digest(serial_1)
        assert _rows_digest(serial_2) == d, "E14 not stable across runs"
        assert _rows_digest(parallel) == d, (
            "E14 digest depends on sweep process count"
        )

    def test_e14_throughput_scales_with_nodes(self):
        from repro.experiments.cluster_scaling import run_cluster_scaling

        one = run_cluster_scaling(nnodes=1, replicas=1, nclients=16,
                                  ops_per_client=8, seed=0)
        four = run_cluster_scaling(nnodes=4, replicas=1, nclients=16,
                                   ops_per_client=8, seed=0)
        assert four["kops_s"] >= 2.0 * one["kops_s"], (
            f"no scaling: 1 node {one['kops_s']:.1f} kops/s, "
            f"4 nodes {four['kops_s']:.1f} kops/s"
        )
        assert four["remote_calls"] > 0


# ----------------------------------------------------------------------
# PFS re-hosted on nodes
# ----------------------------------------------------------------------
def test_pfs_cluster_runs_on_genuine_nodes():
    from repro.experiments.cluster_scaling import run_pfs_cluster

    row = run_pfs_cluster(ndata=2)
    assert row["fabric_messages"] > 0, "PFS never used the fabric"
    assert row["vpic_MBps"] > 0 and row["bdcats_MBps"] > 0
    assert row["metadata_ops"] > 0


def test_orangefs_default_transport_unchanged():
    """The transport seam must not move the standalone PFS numbers."""
    from repro.experiments.pfs_eval import run_pfs

    a = run_pfs(mds_backend="ext4", data_device="nvme", ndata=2)
    b = run_pfs(mds_backend="ext4", data_device="nvme", ndata=2)
    assert a == b
