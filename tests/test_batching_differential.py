"""Differential harness: the batching fast path must be a pure optimization.

Seeded random op sequences (sizes, offsets, and interleaved fsync/crash
points drawn from the ``"faults"`` RNG stream) run through the batched
path (Client.submit_batch + worker batch-pop + BatchSchedMod merging +
device coalescing) and the plain per-op path, and the two must agree
exactly: byte-identical logical contents, identical per-op results, and
every span's phases summing to its end-to-end time with zero remainder —
across Lab-All / Lab-Min / Lab-D and the ext4 kernel baseline (plugged
vs per-page writeback).
"""

import pytest

from repro.core.labstack import StackSpec
from repro.core.requests import LabRequest
from repro.core.runtime import RuntimeConfig
from repro.devices.base import BlockDevice, IoOp
from repro.devices.profiles import DeviceSpec, make_device
from repro.faults import FaultPlan, FaultSpec
from repro.kernel import make_filesystem
from repro.kernel.block_layer import BlockLayer
from repro.mods.generic_fs import GenericFS
from repro.obs.telemetry import Telemetry
from repro.sim import Environment, RngRegistry
from repro.system import LabStorSystem

PAGE = 4096
FILE_PAGES = 32
PATH = "fs::/diff/data"


# ----------------------------------------------------------------------
# workload generation: everything random comes off the "faults" stream
# ----------------------------------------------------------------------
def _gen_batches(seed: int, nbatches: int = 10):
    """Batches of same-kind ops on distinct pages, plus fsync points.

    Within-batch extents are disjoint (batch members execute concurrently)
    while cross-batch overwrites are fair game — submit_batch settles a
    whole batch before the next begins.
    """
    rng = RngRegistry(seed).stream("faults")
    batches = []
    for _ in range(nbatches):
        k = int(rng.integers(1, 9))
        pages = sorted(int(p) for p in rng.choice(FILE_PAGES, size=k, replace=False))
        if rng.random() < 0.65:
            ops = [("write", p * PAGE, bytes([int(rng.integers(1, 256))]) * PAGE)
                   for p in pages]
        else:
            ops = [("read", p * PAGE, PAGE) for p in pages]
        batches.append((ops, bool(rng.random() < 0.3)))
    return batches


def _build_system(variant: str, batched: bool):
    telemetry = Telemetry()
    if batched:
        system = LabStorSystem(
            devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
            config=RuntimeConfig(nworkers=1, worker_batch_max=8),
            telemetry=telemetry,
        )
        stack = (system.stack("fs::/diff")
                 .fs(variant=variant)
                 .sched("BatchSchedMod", window_ns=10_000, batch_max=8)
                 .mount())
    else:
        system = LabStorSystem(
            devices=("nvme",),
            config=RuntimeConfig(nworkers=1),
            telemetry=telemetry,
        )
        stack = system.stack("fs::/diff").fs(variant=variant).mount()
    return system, stack, GenericFS(system.client()), telemetry


def _drive(variant: str, batched: bool, seed: int):
    """Run the generated workload; returns (per-op results, final bytes,
    telemetry)."""
    system, stack, gfs, telemetry = _build_system(variant, batched)
    batches = _gen_batches(seed)

    def go():
        fd = yield from gfs.open(PATH, create=True)
        # identical pre-fill in both paths so reads never straddle EOF
        yield from gfs.write(fd, b"\x00" * (FILE_PAGES * PAGE), offset=0)
        ino = gfs._fds[fd].ino
        results = []
        for ops, fsync in batches:
            if batched:
                reqs = []
                for op in ops:
                    if op[0] == "write":
                        payload = {"ino": ino, "offset": op[1], "data": op[2]}
                        reqs.append(LabRequest(op="fs.write", payload=payload))
                    else:
                        payload = {"ino": ino, "offset": op[1], "size": op[2]}
                        reqs.append(LabRequest(op="fs.read", payload=payload))
                comps = yield from gfs.client.submit_batch(stack, reqs)
                for comp in comps:
                    assert comp.error is None, f"batched op failed: {comp.error!r}"
                    results.append(comp.value)
            else:
                for op in ops:
                    if op[0] == "write":
                        results.append((yield from gfs.write(fd, op[2], offset=op[1])))
                    else:
                        results.append((yield from gfs.read(fd, op[2], offset=op[1])))
            if fsync:
                yield from gfs.fsync(fd)
        final = yield from gfs.read(fd, FILE_PAGES * PAGE, offset=0)
        yield from gfs.close(fd)
        return results, final

    results, final = system.run(system.process(go()))
    return results, final, telemetry


def _assert_exact_spans(telemetry: Telemetry, label: str):
    assert telemetry.spans, f"{label}: no spans recorded"
    for span in telemetry.spans:
        delta = span.e2e_ns - sum(span.phases().values())
        assert delta == 0, (
            f"{label}: span {span.op} phases sum off by {delta} ns "
            f"(e2e={span.e2e_ns}, phases={span.phases()})"
        )


@pytest.mark.parametrize("variant", ["all", "min", "d"])
@pytest.mark.parametrize("seed", [3, 11])
def test_batched_matches_unbatched(variant, seed):
    base_results, base_final, base_tel = _drive(variant, batched=False, seed=seed)
    fast_results, fast_final, fast_tel = _drive(variant, batched=True, seed=seed)
    assert fast_final == base_final, "store contents diverged"
    assert len(fast_results) == len(base_results)
    for i, (a, b) in enumerate(zip(base_results, fast_results)):
        assert a == b, f"op {i} result diverged: {a!r} != {b!r}"
    _assert_exact_spans(base_tel, f"{variant}/unbatched")
    _assert_exact_spans(fast_tel, f"{variant}/batched")


def test_batched_spans_attribute_batch_phase():
    """The async batched path must bill doorbell wait into the new
    ``batch`` phase — and still decompose exactly."""
    _results, _final, telemetry = _drive("all", batched=True, seed=3)
    assert any(s.phases().get("batch", 0) > 0 for s in telemetry.spans), \
        "no span carries batch-phase time"


# ----------------------------------------------------------------------
# ext4 baseline: plugged (merged) writeback vs per-page writeback
# ----------------------------------------------------------------------
def _drive_ext4(per_page: bool, seed: int):
    env = Environment()
    telemetry = Telemetry().install(env)
    dev = make_device(env, "nvme")
    fs = make_filesystem("ext4", env, dev)
    if per_page:
        fs.cache._writeback_run = None  # force the unbatched writeback path
    rng = RngRegistry(seed).stream("faults")
    writes = []
    for _ in range(24):
        page = int(rng.integers(0, FILE_PAGES))
        writes.append((page * PAGE, bytes([int(rng.integers(1, 256))]) * PAGE,
                       bool(rng.random() < 0.25)))

    def go():
        fd = yield env.process(fs.open("/data", create=True))
        yield env.process(fs.write(fd, b"\x00" * (FILE_PAGES * PAGE), offset=0))
        for offset, data, fsync in writes:
            yield env.process(fs.write(fd, data, offset=offset))
            if fsync:
                yield env.process(fs.fsync(fd))
        yield env.process(fs.fsync(fd))
        out = yield env.process(fs.read(fd, FILE_PAGES * PAGE, offset=0))
        yield env.process(fs.close(fd))
        return out

    proc = env.process(go())
    env.run(proc)
    return proc.value, fs, telemetry


def test_ext4_plugged_writeback_matches_per_page():
    merged_final, merged_fs, merged_tel = _drive_ext4(per_page=False, seed=5)
    plain_final, _plain_fs, plain_tel = _drive_ext4(per_page=True, seed=5)
    assert merged_final == plain_final, "ext4 writeback paths diverged"
    assert merged_fs.block_layer.merged_bios > 0, "plugged path never merged"
    _assert_exact_spans(merged_tel, "ext4/plugged")
    _assert_exact_spans(plain_tel, "ext4/per-page")


def test_block_layer_batch_submit_matches_sequential():
    """N bios via submit_bio and the same bios via submit_batch_bio leave
    identical device bytes; the batch path merges contiguous runs."""
    def run(batch: bool):
        env = Environment()
        dev = make_device(env, "nvme")
        layer = BlockLayer(env, dev)
        bios = [(IoOp.WRITE, i * PAGE, PAGE, bytes([i + 1]) * PAGE) for i in range(8)]
        bios.append((IoOp.WRITE, 64 * PAGE, PAGE, b"\x77" * PAGE))  # discontiguous

        def go():
            if batch:
                yield from layer.submit_batch_bio(bios)
            else:
                for op, off, size, data in bios:
                    yield from layer.submit_bio(op, off, size, data)

        env.run(env.process(go()))
        return dev.store.read(0, 65 * PAGE), layer

    seq_bytes, _seq_layer = run(batch=False)
    bat_bytes, bat_layer = run(batch=True)
    assert bat_bytes == seq_bytes
    assert bat_layer.merged_bios == 7      # 8 contiguous bios -> one run
    assert bat_layer.submitted == 2        # merged run + the outlier


# ----------------------------------------------------------------------
# fault isolation: one bad constituent must not poison its batch-mates
# ----------------------------------------------------------------------
def test_fault_in_merged_batch_fails_only_that_op():
    plan = FaultPlan.of(FaultSpec(kind="media_error", device="nvme", op="write",
                                  probability=1.0, count=1))
    system = LabStorSystem(
        devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
        config=RuntimeConfig(nworkers=1, worker_batch_max=8),
        fault_plan=plan,
    )
    spec = StackSpec.linear("blk::/b", [("BatchSchedMod", "fi.sched"),
                                        ("KernelDriverMod", "fi.drv")])
    spec.nodes[0].attrs = {"nqueues": 8, "window_ns": 10_000, "batch_max": 8}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = system.runtime.mount_stack(spec)
    client = system.client()
    reqs = [LabRequest(op="blk.write",
                       payload={"offset": i * PAGE, "size": PAGE,
                                "data": bytes([i + 1]) * PAGE})
            for i in range(4)]

    def go():
        return (yield from client.submit_batch(stack, reqs))

    comps = system.run(system.process(go()))
    assert len(comps) == 4
    errors = [i for i, c in enumerate(comps) if c.error is not None]
    assert len(errors) == 1, f"expected exactly one failed constituent, got {errors}"
    sched = stack.mods["fi.sched"]
    assert sched.merged_groups >= 1, "the batch never merged"
    store = system.devices["nvme"].store
    for i, comp in enumerate(comps):
        if comp.error is None:
            assert store.read(i * PAGE, PAGE) == bytes([i + 1]) * PAGE, \
                f"surviving constituent {i} lost its data"


# ----------------------------------------------------------------------
# crash point drawn from the "faults" stream, against the batched path
# ----------------------------------------------------------------------
def test_crash_point_spares_acked_batch_constituents():
    from repro.units import usec

    rng = RngRegistry(7).stream("faults")
    cut_at = int(rng.integers(80_000, 200_000))
    plan = FaultPlan.of(FaultSpec(kind="power_cut", at=cut_at,
                                  restart_after=int(usec(50))))
    system = LabStorSystem(
        devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
        config=RuntimeConfig(nworkers=1, worker_batch_max=8),
        fault_plan=plan,
    )
    stack = (system.stack("fs::/crash")
             .fs(variant="min")
             .sched("BatchSchedMod", window_ns=10_000, batch_max=8)
             .mount())
    gfs = GenericFS(system.client())

    def go():
        fd = yield from gfs.open("fs::/crash/f", create=True)
        ino = gfs._fds[fd].ino
        outcomes = []
        for wave in range(12):
            reqs = [LabRequest(op="fs.write",
                               payload={"ino": ino,
                                        "offset": (wave * 4 + i) * PAGE,
                                        "data": bytes([wave * 4 + i + 1]) * PAGE})
                    for i in range(4)]
            comps = yield from gfs.client.submit_batch(stack, reqs)
            for i, comp in enumerate(comps):
                outcomes.append(((wave * 4 + i), comp.error))
        return outcomes

    outcomes = system.run(system.process(go()))
    assert system.runtime.crashes >= 1, "the power cut never fired"

    def check():
        fd = yield from gfs.open("fs::/crash/f")
        ok = []
        for slot, error in outcomes:
            if error is not None:
                continue  # failed mid-crash: no durability promise
            data = yield from gfs.read(fd, PAGE, offset=slot * PAGE)
            ok.append(data == bytes([slot + 1]) * PAGE)
        yield from gfs.close(fd)
        return ok

    ok = system.run(system.process(check()))
    assert ok and all(ok), "acknowledged batched write lost after power cut"
