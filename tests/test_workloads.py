"""Tests for the workload generators (fio, fxmark, filebench, labios, vpic)."""

import pytest

from repro.devices import make_device
from repro.kernel import make_filesystem, make_interface
from repro.mods.generic_fs import GenericFS
from repro.mods.generic_kvs import GenericKVS
from repro.pfs import OrangeFs
from repro.sim import Environment
from repro.system import LabStorSystem
from repro.units import KiB
from repro.workloads import (
    FioJob,
    GenericFsAdapter,
    KernelFsAdapter,
    LabStackEngine,
    RawDeviceEngine,
    VpicConfig,
    run_bdcats,
    run_create,
    run_fio,
    run_labios_fs,
    run_labios_kvs,
    run_personality,
    run_rename,
    run_unlink,
    run_vpic,
)


# --- fio -------------------------------------------------------------------
def test_fio_randwrite_on_posix_interface():
    env = Environment()
    dev = make_device(env, "nvme")
    engine = RawDeviceEngine(make_interface("posix", env, dev))
    result = run_fio(env, engine, [FioJob(rw="randwrite", bs=4096, nops=50)])
    assert result.ops == 50
    assert result.iops > 0
    assert result.latency.count == 50
    assert dev.bytes_written == 50 * 4096


def test_fio_seq_read_returns_data_path():
    env = Environment()
    dev = make_device(env, "nvme")
    engine = RawDeviceEngine(make_interface("io_uring", env, dev))
    result = run_fio(env, engine, [FioJob(rw="read", bs=4096, nops=20)])
    assert result.ops == 20
    assert dev.bytes_read == 20 * 4096


def test_fio_iodepth_increases_throughput():
    def iops(depth):
        env = Environment()
        dev = make_device(env, "nvme")
        engine = RawDeviceEngine(make_interface("libaio", env, dev))
        jobs = [FioJob(rw="randwrite", bs=4096, nops=200, iodepth=depth, core=c) for c in range(2)]
        return run_fio(env, engine, jobs).iops

    assert iops(8) > iops(1) * 2


def test_fio_multiple_jobs_aggregate():
    env = Environment()
    dev = make_device(env, "nvme")
    engine = RawDeviceEngine(make_interface("posix", env, dev))
    result = run_fio(env, engine, [FioJob(nops=30, core=c) for c in range(4)])
    assert result.ops == 120


def test_fio_labstack_engine():
    sys_ = LabStorSystem(devices=("nvme",))
    from repro.core import StackSpec

    spec = StackSpec.linear("blk::/raw", [("KernelDriverMod", "rawdrv")])
    spec.nodes[0].attrs = {"device": "nvme"}
    stack = sys_.runtime.mount_stack(spec)
    client = sys_.client()
    engine = LabStackEngine(client, stack, sys_.devices["nvme"])
    result = run_fio(sys_.env, engine, [FioJob(rw="randwrite", bs=4096, nops=40)])
    assert result.ops == 40
    assert sys_.devices["nvme"].bytes_written == 40 * 4096


def test_fio_deterministic_given_seed():
    def one():
        env = Environment()
        dev = make_device(env, "nvme")
        engine = RawDeviceEngine(make_interface("posix", env, dev))
        r = run_fio(env, engine, [FioJob(rw="randwrite", nops=50)], seed=7)
        return (r.elapsed_ns, r.latency.summary()["p99"])

    assert one() == one()


# --- fxmark ----------------------------------------------------------------
def test_fxmark_create_kernel_fs():
    env = Environment()
    fs = make_filesystem("ext4", env, make_device(env, "nvme"))
    api = KernelFsAdapter(fs)
    result = run_create(env, lambda tid: api, nthreads=2, files_per_thread=10)
    assert result.ops == 20
    assert result.ops_per_sec > 0


def test_fxmark_create_labstor():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/x", variant="min")
    apis = {}

    def factory(tid):
        if tid not in apis:
            apis[tid] = GenericFsAdapter(GenericFS(sys_.client()), "fs::/x")
        return apis[tid]

    result = run_create(sys_.env, factory, nthreads=2, files_per_thread=10)
    assert result.ops == 20


def test_fxmark_unlink_and_rename():
    env = Environment()
    fs = make_filesystem("xfs", env, make_device(env, "nvme"))
    api = KernelFsAdapter(fs)
    r1 = run_unlink(env, lambda tid: api, nthreads=2, files_per_thread=5)
    assert r1.ops == 10
    r2 = run_rename(env, lambda tid: api, nthreads=2, files_per_thread=5)
    assert r2.ops == 10
    assert fs.exists("/r0/g0")
    assert not fs.exists("/r0/f0")


# --- filebench --------------------------------------------------------------
@pytest.mark.parametrize("name", ["varmail", "webserver", "webproxy", "fileserver"])
def test_filebench_personalities_kernel(name):
    env = Environment()
    fs = make_filesystem("ext4", env, make_device(env, "nvme"))
    api = KernelFsAdapter(fs)
    result = run_personality(env, lambda tid: api, name, nthreads=2, loops=2)
    assert result.ops > 0
    assert result.ops_per_sec > 0
    assert result.bytes_moved > 0


def test_filebench_varmail_labstor():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/fb", variant="min")
    apis = {}

    def factory(tid):
        if tid not in apis:
            apis[tid] = GenericFsAdapter(GenericFS(sys_.client()), "fs::/fb")
        return apis[tid]

    result = run_personality(sys_.env, factory, "varmail", nthreads=2, loops=2)
    assert result.ops > 0


# --- labios ------------------------------------------------------------------
def test_labios_fs_vs_kvs_backends():
    env = Environment()
    fs = make_filesystem("ext4", env, make_device(env, "nvme"))
    r_fs = run_labios_fs(env, KernelFsAdapter(fs), nlabels=20)
    assert r_fs.labels == 20
    assert r_fs.throughput_MBps > 0

    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/lb", variant="min")
    kvs = GenericKVS(sys_.client(), "kvs::/lb")
    r_kvs = run_labios_kvs(sys_.env, kvs, nlabels=20)
    assert r_kvs.labels == 20
    # KVS path does 1 op per label instead of open/seek/write/close
    assert r_kvs.labels_per_sec > r_fs.labels_per_sec


# --- pfs + vpic ----------------------------------------------------------------
def _make_pfs(env, mds_fs="ext4", ndata=2, data_dev="ssd"):
    mds = KernelFsAdapter(make_filesystem(mds_fs, env, make_device(env, "nvme")))
    data = [
        KernelFsAdapter(make_filesystem("ext4", env, make_device(env, data_dev)))
        for _ in range(ndata)
    ]
    return OrangeFs(env, mds, data)


def test_pfs_write_read_roundtrip():
    env = Environment()
    pfs = _make_pfs(env)
    payload = bytes(range(256)) * 1024  # 256 KiB -> 4 stripes

    def proc():
        yield from pfs.write_file("/f", payload)
        return (yield from pfs.read_file("/f"))

    assert env.run(env.process(proc())) == payload
    assert pfs.metadata_ops == 8  # 4 record + 4 lookup


def test_pfs_stripes_round_robin_across_servers():
    env = Environment()
    pfs = _make_pfs(env, ndata=2)
    payload = b"s" * (256 * KiB)

    def proc():
        yield from pfs.write_file("/rr", payload)

    env.run(env.process(proc()))
    # both data servers hold stripes
    assert pfs.data[0].fs.exists("/data/rr.s0")
    assert pfs.data[1].fs.exists("/data/rr.s1")


def test_pfs_unknown_file():
    env = Environment()
    pfs = _make_pfs(env)

    def proc():
        with pytest.raises(KeyError):
            yield from pfs.read_file("/ghost")
        return True

    assert env.run(env.process(proc()))


def test_vpic_then_bdcats():
    env = Environment()
    pfs = _make_pfs(env)
    cfg = VpicConfig(nprocs=2, timesteps=2, particles_per_proc=512)
    w = run_vpic(env, pfs, cfg)
    r = run_bdcats(env, pfs, cfg)
    assert w.bytes_moved == cfg.total_bytes
    assert r.bytes_moved == cfg.total_bytes
    assert w.metadata_ops == r.metadata_ops > 0
    assert w.bandwidth_MBps > 0
