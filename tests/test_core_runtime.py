"""Integration tests: Runtime + Workers + Client + live upgrades + crash."""

import pytest

from repro.core import LabRequest, RuntimeConfig, StackSpec, UpgradeRequest
from repro.errors import LabStorError, UpgradeError
from repro.mods.dummy import DummyMod, DummyModV2
from repro.mods.generic_fs import GenericFS
from repro.mods.generic_kvs import GenericKVS
from repro.system import LabStorSystem
from repro.units import msec, sec


def make_dummy_system(**cfg_kw):
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(**cfg_kw))
    spec = StackSpec.linear("msg::/dummy", [("DummyMod", "dummy0")])
    stack = sys_.runtime.mount_stack(spec)
    return sys_, stack


def test_mount_stack_from_yaml_text():
    sys_ = LabStorSystem(devices=("nvme",))
    yaml_text = """
mount: fs::/y
rules:
  exec_mode: async
labmods:
  - mod: LabFs
    uuid: yfs
    attrs:
      capacity_bytes: 268435456
      device: nvme
    outputs: [ydrv]
  - mod: KernelDriverMod
    uuid: ydrv
    attrs:
      device: nvme
"""
    stack = sys_.runtime.mount_stack(yaml_text)
    assert stack.mount == "fs::/y"
    assert stack.entry.uuid == "yfs"


def test_async_round_trip_through_worker():
    sys_, stack = make_dummy_system()
    client = sys_.client()

    def proc():
        result = yield from client.call(
            stack, LabRequest(op="msg.send", payload={"value": "ping"})
        )
        return result

    result = sys_.run(sys_.process(proc()))
    assert result == {"echo": "ping", "version": 1}
    assert sys_.runtime.registry.get("dummy0").messages == 1


def test_concurrent_clients_roundtrip():
    sys_, stack = make_dummy_system(nworkers=2)
    clients = [sys_.client() for _ in range(4)]
    results = []

    def proc(c, i):
        r = yield from c.call(stack, LabRequest(op="msg.send", payload={"value": i}))
        results.append(r["echo"])

    procs = [sys_.process(proc(c, i)) for i, c in enumerate(clients)]
    sys_.run(sys_.env.all_of(procs))
    assert sorted(results) == [0, 1, 2, 3]


def test_module_error_propagates_to_client():
    sys_ = LabStorSystem(devices=("nvme",))
    stack = sys_.mount_fs_stack("fs::/m", variant="all")
    client = sys_.client()
    gfs = GenericFS(client)

    def proc():
        with pytest.raises(Exception, match="ENOENT"):
            yield from gfs.open("fs::/m/missing.txt")
        return True

    assert sys_.run(sys_.process(proc()))


def test_sync_stack_bypasses_runtime_queues():
    sys_ = LabStorSystem(devices=("nvme",))
    stack = sys_.mount_fs_stack("fs::/d", variant="d")
    client = sys_.client()
    gfs = GenericFS(client)
    before = sum(w.processed for w in sys_.runtime.orchestrator.workers)

    def proc():
        yield from gfs.write_file("fs::/d/f", b"x" * 4096)
        return (yield from gfs.read_file("fs::/d/f"))

    assert sys_.run(sys_.process(proc())) == b"x" * 4096
    after = sum(w.processed for w in sys_.runtime.orchestrator.workers)
    assert after == before  # no worker involvement


def test_sync_variant_lower_latency_than_async():
    def one_write(variant):
        sys_ = LabStorSystem(devices=("nvme",))
        sys_.mount_fs_stack("fs::/v", variant=variant)
        client = sys_.client()
        gfs = GenericFS(client)

        def proc():
            fd = yield from gfs.open("fs::/v/f", create=True)
            start = sys_.env.now
            yield from gfs.write(fd, b"d" * 4096, offset=0)
            return sys_.env.now - start

        return sys_.run(sys_.process(proc()))

    assert one_write("d") < one_write("min")


def test_kvs_stack_put_get_remove():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/store", variant="all")
    client = sys_.client()
    kvs = GenericKVS(client, "kvs::/store")

    def proc():
        yield from kvs.put("alpha", b"A" * 10_000)
        data = yield from kvs.get("alpha")
        yield from kvs.remove("alpha")
        exists = yield from kvs.exists("alpha")
        return data, exists

    data, exists = sys_.run(sys_.process(proc()))
    assert data == b"A" * 10_000
    assert exists is False


# --- live upgrades ---------------------------------------------------------
def test_centralized_upgrade_swaps_and_preserves_state():
    sys_, stack = make_dummy_system(admin_poll_ns=msec(0.5))
    client = sys_.client()
    versions_seen = set()
    sent = {"n": 0}

    def traffic():
        # keep messaging until we observe the upgraded module answer
        for i in range(100_000):
            r = yield from client.call(stack, LabRequest(op="msg.send", payload={"value": i}))
            versions_seen.add(r["version"])
            sent["n"] += 1
            if r["version"] >= 2 and sent["n"] > 10:
                break

    def upgrader():
        yield sys_.env.timeout(msec(0.2))
        sys_.runtime.modify_mods(UpgradeRequest(mod_name="DummyMod", new_cls=DummyModV2))

    p = sys_.process(traffic())
    sys_.process(upgrader())
    sys_.run(p)
    mod = sys_.runtime.registry.get("dummy0")
    assert isinstance(mod, DummyModV2)
    assert mod.version == 2
    assert mod.messages == sent["n"]  # state carried across the swap
    assert versions_seen == {1, 2}  # messages processed by both versions


def test_upgrade_of_unknown_mod_type_errors():
    sys_, stack = make_dummy_system(admin_poll_ns=msec(0.5))
    sys_.runtime.modify_mods(UpgradeRequest(mod_name="GhostMod", new_cls=DummyModV2))
    with pytest.raises(UpgradeError):
        sys_.run(until=msec(30))


def test_decentralized_upgrade_slower_than_centralized():
    def upgrade_elapsed(kind):
        sys_, stack = make_dummy_system(admin_poll_ns=msec(0.5))
        client = sys_.client()
        sys_.runtime.modify_mods(
            UpgradeRequest(mod_name="DummyMod", new_cls=DummyModV2, upgrade_type=kind)
        )
        start = sys_.env.now

        def wait_done():
            while sys_.runtime.module_manager.upgrades_done == 0:
                yield sys_.env.timeout(msec(0.1))

        sys_.run(sys_.process(wait_done()))
        return sys_.env.now - start

    assert upgrade_elapsed("decentralized") > upgrade_elapsed("centralized")


def test_unknown_upgrade_type_rejected():
    with pytest.raises(UpgradeError):
        UpgradeRequest(mod_name="DummyMod", new_cls=DummyModV2, upgrade_type="sideways")


def test_requests_flow_after_upgrade_resumes_queues():
    sys_, stack = make_dummy_system(admin_poll_ns=msec(0.5))
    client = sys_.client()
    sys_.runtime.modify_mods(UpgradeRequest(mod_name="DummyMod", new_cls=DummyModV2))

    def proc():
        yield sys_.env.timeout(msec(20))  # let the upgrade complete first
        return (yield from client.call(stack, LabRequest(op="msg.send", payload={"value": "after"})))

    r = sys_.run(sys_.process(proc()))
    assert r == {"echo": "after", "version": 2}


# --- crash recovery ----------------------------------------------------------
def test_crash_and_restart_completes_inflight_request():
    sys_, stack = make_dummy_system(restart_wait_ns=msec(5))
    client = sys_.client()
    result = {}

    def app():
        r = yield from client.call(stack, LabRequest(op="msg.send", payload={"value": "survive"}))
        result["r"] = r

    def chaos():
        # crash before the request is submitted-to-worker window elapses
        sys_.runtime.crash()
        yield sys_.env.timeout(msec(10))
        yield sys_.env.process(sys_.runtime.restart())

    sys_.process(chaos())

    def app_delayed():
        yield sys_.env.timeout(1000)  # submit while runtime is down
        yield from app()

    p = sys_.process(app_delayed())
    sys_.run(p)
    assert result["r"]["echo"] == "survive"
    assert sys_.runtime.crashes == 1


def test_crash_twice_rejected_without_restart():
    sys_, _ = make_dummy_system()
    sys_.runtime.crash()
    with pytest.raises(LabStorError):
        sys_.runtime.crash()


def test_restart_when_online_rejected():
    sys_, _ = make_dummy_system()

    def proc():
        with pytest.raises(LabStorError):
            yield sys_.env.process(sys_.runtime.restart())
        return True

    assert sys_.run(sys_.process(proc()))


def test_state_repair_called_on_restart():
    sys_, stack = make_dummy_system()
    repaired = []
    mod = sys_.runtime.registry.get("dummy0")
    mod.state_repair = lambda: repaired.append(True)  # type: ignore[method-assign]
    sys_.runtime.crash()

    def proc():
        yield sys_.env.process(sys_.runtime.restart())

    sys_.run(sys_.process(proc()))
    assert repaired == [True]


# --- fork / execve ------------------------------------------------------------
def test_fork_inherits_fd_table():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/f", variant="min")
    client = sys_.client()
    gfs = GenericFS(client)

    def proc():
        fd = yield from gfs.open("fs::/f/shared", create=True)
        child = yield sys_.env.process(client.fork())
        return fd, child

    fd, child = sys_.run(sys_.process(proc()))
    assert fd in child.fd_table
    assert child.pid != client.pid
    assert child.fd_table[fd] == client.fd_table[fd]


def test_execve_reconnects_and_restores_fds():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/e", variant="min")
    client = sys_.client()
    gfs = GenericFS(client)

    def proc():
        fd = yield from gfs.open("fs::/e/file", create=True)
        old_qid = client.conn.qp.qid
        yield sys_.env.process(client.execve())
        return fd, old_qid, client.conn.qp.qid

    fd, old_qid, new_qid = sys_.run(sys_.process(proc()))
    assert new_qid != old_qid
    assert fd in client.fd_table


def test_runtime_stats_shape():
    sys_, _ = make_dummy_system()
    sys_.client()
    stats = sys_.runtime.stats()
    assert stats["stacks"] == 1
    assert stats["clients"] == 1
    assert stats["workers"] >= 1
