"""Tests for repro.traffic: arrivals, Zipf keys, YCSB, the open-loop engine."""

import numpy as np
import pytest

from repro.core.runtime import RuntimeConfig
from repro.mods.generic_kvs import GenericKVS
from repro.system import LabStorSystem
from repro.traffic import (
    BurstyArrivals,
    DiurnalArrivals,
    OpenLoopEngine,
    PoissonArrivals,
    QueueDepthAdmission,
    TenantSLO,
    TenantSpec,
    YcsbWorkload,
    ZipfKeys,
    build_overload_engine,
    overload_tenants,
)
from repro.units import msec, usec


# ---------------------------------------------------------------------------
# Zipf keys
# ---------------------------------------------------------------------------
def test_zipf_bounds_and_determinism():
    z = ZipfKeys(100, theta=0.99)
    draws1 = z.sample_many(np.random.default_rng(7), 2000)
    draws2 = z.sample_many(np.random.default_rng(7), 2000)
    assert (draws1 == draws2).all()
    assert draws1.min() >= 0 and draws1.max() < 100


def test_zipf_is_skewed_and_uniform_at_theta_zero():
    rng = np.random.default_rng(0)
    z = ZipfKeys(1000, theta=0.99)
    draws = z.sample_many(rng, 20_000)
    hot = (draws < 10).mean()
    assert hot > 0.25, f"top-1% keys carried only {hot:.2%} of draws"
    assert abs(hot - z.hot_fraction(10)) < 0.05
    u = ZipfKeys(1000, theta=0.0)
    udraws = u.sample_many(np.random.default_rng(0), 20_000)
    assert (udraws < 10).mean() < 0.03  # ~1% under uniform


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfKeys(0)
    with pytest.raises(ValueError):
        ZipfKeys(10, theta=-1)


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------
def _empirical_rate(proc, ndraws=20_000, seed=3):
    rng = np.random.default_rng(seed)
    now = 0
    for _ in range(ndraws):
        gap = proc.next_interarrival_ns(rng, now)
        assert isinstance(gap, int) and gap >= 1
        now += gap
    return ndraws / (now / 1e9)


def test_poisson_mean_rate():
    rate = _empirical_rate(PoissonArrivals(1e6))
    assert rate == pytest.approx(1e6, rel=0.05)


def test_bursty_time_averaged_rate_and_phases():
    proc = BurstyArrivals(1e6, burst_factor=8.0, duty=0.2, mean_burst_ns=50_000)
    assert proc.burst_rate == pytest.approx(8 * proc.quiet_rate)
    # duty*burst + (1-duty)*quiet == configured mean
    mean = 0.2 * proc.burst_rate + 0.8 * proc.quiet_rate
    assert mean == pytest.approx(1e6)
    rate = _empirical_rate(proc, ndraws=40_000)
    assert rate == pytest.approx(1e6, rel=0.25)


def test_diurnal_rate_modulation_and_mean():
    proc = DiurnalArrivals(1e6, period_ns=1_000_000, amplitude=0.8)
    quarter = 250_000  # sin peak at 1/4 period
    assert proc.rate_at(quarter) == pytest.approx(1.8e6, rel=0.01)
    assert proc.rate_at(3 * quarter) == pytest.approx(0.2e6, rel=0.01)
    rate = _empirical_rate(proc, ndraws=40_000)
    assert rate == pytest.approx(1e6, rel=0.1)


def test_arrival_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0)
    with pytest.raises(ValueError):
        BurstyArrivals(100, duty=1.5)
    with pytest.raises(ValueError):
        DiurnalArrivals(100, amplitude=1.5)


# ---------------------------------------------------------------------------
# tenants
# ---------------------------------------------------------------------------
def test_tenant_population_maps_to_aggregate_rate():
    spec = TenantSpec("t", users=2_000_000, ops_per_user_per_sec=0.03,
                      slo=TenantSLO(deadline_ns=usec(500)))
    assert spec.offered_ops_per_sec == pytest.approx(60_000)
    arr = spec.build_arrivals(load_factor=2.0)
    assert isinstance(arr, PoissonArrivals)
    assert arr.rate_per_sec == pytest.approx(120_000)


def test_tenant_validation():
    slo = TenantSLO(deadline_ns=1000)
    with pytest.raises(ValueError):
        TenantSLO(deadline_ns=0)
    with pytest.raises(ValueError):
        TenantSpec("t", users=0, ops_per_user_per_sec=1, slo=slo)
    with pytest.raises(ValueError):
        TenantSpec("t", users=1, ops_per_user_per_sec=1, slo=slo,
                   schedule="lunar")
    spec = TenantSpec("t", users=1, ops_per_user_per_sec=1, slo=slo)
    with pytest.raises(ValueError):
        spec.build_arrivals(load_factor=0)


# ---------------------------------------------------------------------------
# YCSB workload family
# ---------------------------------------------------------------------------
def _kvs_system(nworkers=1):
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=nworkers))
    sys_.mount_kvs_stack("kvs::/y", variant="all")
    return sys_


def test_ycsb_mix_fractions_and_reads_verify():
    sys_ = _kvs_system()
    wl = YcsbWorkload(GenericKVS(sys_.client(), "kvs::/y"), mix="B",
                      nkeys=32, value_size=64)
    sys_.run(sys_.process(wl.preload()))
    rng = np.random.default_rng(11)

    def drive(n=200):
        vals = []
        for _ in range(n):
            vals.append((yield from wl.make_op(rng)))
        return vals

    vals = sys_.run(sys_.process(drive()))
    total = sum(wl.counts.values())
    assert total == 200
    assert wl.counts["read"] / total == pytest.approx(0.95, abs=0.05)
    # reads return the key-derived payload the load phase inserted
    read_vals = [v for v in vals if isinstance(v, bytes)]
    assert read_vals and all(len(v) == 64 for v in read_vals)
    sys_.shutdown()


def test_ycsb_mix_validation():
    from repro.traffic import YcsbMix

    with pytest.raises(ValueError):
        YcsbMix("bad", read=0.5, update=0.4)


# ---------------------------------------------------------------------------
# the open-loop engine
# ---------------------------------------------------------------------------
def _engine_system(duration_ns, policy=None, load=1.0, rate=20_000.0):
    sys_ = _kvs_system(nworkers=2)
    wl = YcsbWorkload(GenericKVS(sys_.client(), "kvs::/y"), mix="A", nkeys=16,
                      value_size=128)
    sys_.run(sys_.process(wl.preload()))
    engine = OpenLoopEngine(sys_, duration_ns=duration_ns, policy=policy)
    spec = TenantSpec("solo", users=int(rate), ops_per_user_per_sec=1.0,
                      slo=TenantSLO(deadline_ns=usec(400)))
    engine.add_tenant(spec, wl.make_op, load_factor=load)
    return sys_, engine


def test_engine_light_load_all_ops_good():
    sys_, engine = _engine_system(msec(2))
    s = engine.run()
    t = s["tenants"]["solo"]
    assert t["launched"] == t["completed"] > 0
    assert t["good"] + t["slo_violations"] == t["completed"]
    assert t["rejected"] == 0 and t["errors"] == 0
    assert engine.inflight == 0
    assert t["p999_ns"] >= t["p99_ns"] >= t["p50_ns"] > 0
    # the registry mirrors the per-tenant counters
    reg = engine.registry
    assert reg.counter("tenant_ops_total", tenant="solo") == t["completed"]
    assert reg.counter("tenant_slo_violations_total", tenant="solo") == t["slo_violations"]
    assert reg.histogram("tenant_latency_ns", tenant="solo").total == t["completed"]
    sys_.shutdown()


def test_engine_goodput_accounting_against_recorder():
    sys_, engine = _engine_system(msec(2))
    s = engine.run()
    st = engine.stats("solo")
    assert st.latency.count == st.completed
    assert s["goodput_ops_s"] == pytest.approx(
        st.good / (s["elapsed_ns"] / 1e9))
    sys_.shutdown()


def test_queue_depth_admission_bounds_inflight_and_rejects():
    sys_, engine = _engine_system(msec(2), policy=QueueDepthAdmission(3),
                                  load=8.0)
    s = engine.run()
    t = s["tenants"]["solo"]
    assert s["peak_inflight"] <= 3
    assert t["rejected"] > 0
    assert engine.registry.counter("tenant_rejected_total", tenant="solo") == t["rejected"]
    sys_.shutdown()


def test_open_loop_exposes_saturation_closed_loop_cannot():
    """The point of the whole package: at 8x the load, an open-loop driver
    keeps arrivals coming, queues build, and admitted ops start blowing
    their deadline — violations a think-time loop would never produce."""
    sys_l, light = _engine_system(msec(1.5), load=0.5)
    sl = light.run()["tenants"]["solo"]
    sys_h, heavy = _engine_system(msec(1.5), load=8.0)
    sh = heavy.run()["tenants"]["solo"]
    assert sl["slo_violations"] == 0
    assert sh["slo_violations"] > 0
    assert sh["p99_ns"] > 2 * sl["p99_ns"]
    assert heavy.peak_inflight > 3 * light.peak_inflight
    sys_l.shutdown()
    sys_h.shutdown()


def test_engine_rejects_duplicate_and_empty():
    sys_, engine = _engine_system(msec(1))
    spec = engine.tenants[0]
    with pytest.raises(ValueError):
        engine.add_tenant(spec, lambda rng: None)
    empty = OpenLoopEngine(sys_, duration_ns=msec(1))
    with pytest.raises(ValueError):
        empty.run()
    with pytest.raises(KeyError):
        engine.stats("nobody")
    sys_.shutdown()


def test_engine_uses_telemetry_registry_when_armed():
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=1),
                         telemetry=True)
    engine = OpenLoopEngine(sys_, duration_ns=msec(1))
    assert engine.registry is sys_.telemetry.registry
    sys_.shutdown()


# ---------------------------------------------------------------------------
# the canonical overload preset + determinism
# ---------------------------------------------------------------------------
def test_overload_preset_shape():
    specs = overload_tenants()
    assert [s.name for s in specs] == ["frontend", "analytics"]
    assert sum(s.users for s in specs) == 2_000_000
    assert sum(s.offered_ops_per_sec for s in specs) == pytest.approx(60_000)
    assert {s.schedule for s in specs} == {"diurnal", "bursty"}


def test_overload_preset_runs_and_reports():
    system, engine = build_overload_engine(duration_ns=msec(1), load=1.0)
    s = engine.run()
    assert set(s["tenants"]) == {"frontend", "analytics"}
    assert s["totals"]["completed"] == s["totals"]["launched"] > 0
    from repro.traffic.report import format_slo_report

    table = format_slo_report(s)
    assert "frontend" in table and "analytics" in table
    system.shutdown()


def test_openloop_scenario_is_deterministic(determinism_check):
    from repro.sim.check import SCENARIOS

    determinism_check(SCENARIOS["openloop"])
