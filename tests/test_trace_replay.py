"""Tests for trace record/replay (repro.workloads.replay)."""

import pytest

from repro.devices import make_device
from repro.kernel import make_filesystem
from repro.mods.generic_fs import GenericFS
from repro.sim import Environment
from repro.system import LabStorSystem
from repro.workloads import GenericFsAdapter, KernelFsAdapter
from repro.workloads.replay import (
    RecordingApi,
    TraceOp,
    load_trace,
    replay_trace,
    save_trace,
)


def _record_sample(env, api):
    rec = RecordingApi(api, tid=0)

    def proc():
        fd = yield from rec.open("/app/data.bin", create=True)
        yield from rec.write(fd, b"d" * 8192, offset=0)
        yield from rec.fsync(fd)
        got = yield from rec.read(fd, 4096, offset=0)
        assert len(got) == 4096
        yield from rec.close(fd)
        yield from rec.stat("/app/data.bin")
        yield from rec.unlink("/app/data.bin")

    env.run(env.process(proc()))
    return rec.ops


def test_recording_captures_all_ops():
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    ops = _record_sample(env, api)
    assert [op.kind for op in ops] == [
        "open", "write", "fsync", "read", "close", "stat", "unlink",
    ]
    assert ops[1].size == 8192


def test_trace_serialization_roundtrip():
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    ops = _record_sample(env, api)
    text = save_trace(ops)
    assert load_trace(text) == ops


def test_replay_on_fresh_kernel_fs():
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    ops = _record_sample(env, api)

    env2 = Environment()
    api2 = KernelFsAdapter(make_filesystem("xfs", env2, make_device(env2, "nvme")))
    result = replay_trace(env2, lambda tid: api2, ops)
    assert result.ops == len(ops)
    assert result.errors == 0
    assert result.ops_per_sec > 0


def test_record_on_kernel_replay_on_labstor():
    """Traces are portable across stacks — the adoption workflow."""
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    ops = _record_sample(env, api)

    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/r", variant="min")
    lab_api = GenericFsAdapter(GenericFS(sys_.client()), "fs::/r")
    result = replay_trace(sys_.env, lambda tid: lab_api, ops)
    assert result.ops == len(ops)
    assert result.latency.count == len(ops)


def test_replay_preserves_per_tid_order_across_threads():
    """Two tids replay concurrently, each preserving its own order."""
    ops = []
    for tid in (0, 1):
        ops += [
            TraceOp(kind="open", tid=tid, path=f"/f{tid}", handle=0, create=True),
            TraceOp(kind="write", tid=tid, handle=0, offset=0, size=4096),
            TraceOp(kind="read", tid=tid, handle=0, offset=0, size=4096),
            TraceOp(kind="close", tid=tid, handle=0),
        ]
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/m", variant="min")
    apis = {}

    def factory(tid):
        if tid not in apis:
            apis[tid] = GenericFsAdapter(GenericFS(sys_.client()), "fs::/m")
        return apis[tid]

    result = replay_trace(sys_.env, factory, ops)
    assert result.ops == 8


def test_replay_strict_raises_on_missing_file():
    ops = [TraceOp(kind="open", tid=0, path="/ghost", handle=0, create=False)]
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    from repro.errors import FsError

    with pytest.raises(FsError):
        replay_trace(env, lambda tid: api, ops)


def test_replay_lenient_counts_errors():
    ops = [
        TraceOp(kind="open", tid=0, path="/ghost", handle=0, create=False),
        TraceOp(kind="open", tid=0, path="/ok", handle=1, create=True),
        TraceOp(kind="close", tid=0, handle=1),
    ]
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    result = replay_trace(env, lambda tid: api, ops, strict=False)
    assert result.errors == 1
    assert result.ops == 2


def test_replay_unknown_kind_rejected():
    env = Environment()
    api = KernelFsAdapter(make_filesystem("ext4", env, make_device(env, "nvme")))
    with pytest.raises(ValueError, match="unknown trace op"):
        replay_trace(env, lambda tid: api, [TraceOp(kind="teleport")], strict=False)
