"""repro.snap unit tests: COW layers, system snapshots, the snapshot
tree, and the S1 BackingStore discard/digest fixes."""

import pickle
from types import SimpleNamespace

import pytest

from repro.devices.backing import PAGE_SIZE, BackingStore, digest_page
from repro.errors import ReplayDivergence, SnapshotError
from repro.snap import (
    SnapshotLayer,
    SnapshotStack,
    SnapshotTree,
    SystemSnapshot,
    snapshot_run,
)
from repro.snap.programs import BatchingProgram, Program
from repro.units import msec, usec

CAP = 64 * PAGE_SIZE


# ----------------------------------------------------------------------
# S1: BackingStore discard + page digests
# ----------------------------------------------------------------------
class TestBackingStoreS1:
    def test_discard_of_unwritten_range_materializes_nothing(self):
        """The S1 regression: a partial-page TRIM over never-written
        space used to allocate the edge pages just to zero them."""
        store = BackingStore(CAP)
        store.discard(100, 3 * PAGE_SIZE)  # unaligned head + tail
        assert store.resident_bytes == 0
        assert list(store.page_numbers()) == []

    def test_partial_discard_zeroes_only_resident_edges(self):
        store = BackingStore(CAP)
        store.write(0, b"A" * PAGE_SIZE)
        store.write(PAGE_SIZE, b"B" * PAGE_SIZE)
        # discard the tail half of page 0 and all of page 1
        store.discard(PAGE_SIZE // 2, PAGE_SIZE + PAGE_SIZE // 2)
        assert store.read(0, PAGE_SIZE // 2) == b"A" * (PAGE_SIZE // 2)
        assert store.read(PAGE_SIZE // 2, PAGE_SIZE // 2) == bytes(PAGE_SIZE // 2)
        assert store.read(PAGE_SIZE, PAGE_SIZE) == bytes(PAGE_SIZE)
        assert store.resident_bytes == PAGE_SIZE  # page 1 was dropped

    def test_page_helpers(self):
        store = BackingStore(CAP)
        store.write(2 * PAGE_SIZE, b"x" * 10)
        assert list(store.page_numbers()) == [2]
        assert store.page_bytes(2)[:10] == b"x" * 10
        assert store.page_bytes(5) == bytes(PAGE_SIZE)  # absent reads zeros
        assert store.page_digest(2) == digest_page(store.page_bytes(2))

    def test_content_digest_ignores_sparse_materialization(self):
        """A resident all-zero page and an absent page digest alike."""
        a, b = BackingStore(CAP), BackingStore(CAP)
        a.write(0, b"data")
        b.write(0, b"data")
        b.write(3 * PAGE_SIZE, bytes(PAGE_SIZE))  # explicit zero page
        assert a.content_digest() == b.content_digest()
        assert a.page_digests() == b.page_digests()


# ----------------------------------------------------------------------
# COW layer stack
# ----------------------------------------------------------------------
class TestSnapshotStack:
    def _stack(self):
        base = BackingStore(CAP)
        base.write(0, b"base" * (PAGE_SIZE // 4))
        return base, SnapshotStack(base)

    def test_reads_fall_through_to_base(self):
        base, stack = self._stack()
        assert stack.read(0, 8) == base.read(0, 8)
        assert stack.capacity_bytes == CAP

    def test_writes_land_in_top_layer_not_base(self):
        base, stack = self._stack()
        before = base.content_digest()
        stack.write(0, b"overlaid")
        assert stack.read(0, 8) == b"overlaid"
        assert base.content_digest() == before
        assert stack.top.dirty_pages == 1

    def test_partial_write_cow_reads_through_first(self):
        _base, stack = self._stack()
        stack.write(4, b"XY")
        got = stack.read(0, 8)
        assert got == b"base"[:4] + b"XY" + b"se"[:2]

    def test_snapshot_freezes_top_and_opens_fresh_layer(self):
        _base, stack = self._stack()
        stack.write(0, b"v1" * (PAGE_SIZE // 2))
        frozen = stack.snapshot("t1")
        assert frozen[-1].frozen and frozen[-1].dirty_pages == 1
        # post-snapshot writes land in the fresh top, not the frozen chain
        stack.write(0, b"v2" * (PAGE_SIZE // 2))
        assert bytes(frozen[-1].pages[0][:2]) == b"v1"
        assert stack.read(0, 2) == b"v2"

    def test_from_frozen_rejects_mutable_chain(self):
        layer = SnapshotLayer("x")  # never frozen
        with pytest.raises(SnapshotError):
            SnapshotStack.from_frozen(BackingStore(CAP), [layer], tag="bad",
                                      capacity_bytes=CAP)

    def test_commit_folds_top_into_base(self):
        base, stack = self._stack()
        stack.write(PAGE_SIZE, b"folded")
        stack.commit()
        assert base.read(PAGE_SIZE, 6) == b"folded"
        assert len(stack.layers) == 1

    def test_drop_discards_top_writes(self):
        base, stack = self._stack()
        stack.write(0, b"scratch!")
        stack.drop()
        assert stack.read(0, 4) == b"base"
        assert base.read(0, 4) == b"base"

    def test_from_frozen_shares_layers_copy_on_write(self):
        _base, stack = self._stack()
        stack.write(0, b"gen1gen1")
        frozen = stack.snapshot("gen1")
        clone = SnapshotStack.from_frozen(stack.base, frozen, tag="clone",
                                          capacity_bytes=stack.capacity_bytes)
        clone.write(0, b"gen2gen2")
        assert clone.read(0, 8) == b"gen2gen2"
        assert stack.read(0, 8) == b"gen1gen1"  # original untouched

    def test_discard_through_stack_reads_zero(self):
        _base, stack = self._stack()
        stack.discard(0, PAGE_SIZE)
        assert stack.read(0, PAGE_SIZE) == bytes(PAGE_SIZE)

    def test_content_digest_matches_equivalent_flat_store(self):
        base, stack = self._stack()
        stack.snapshot("t")
        stack.write(PAGE_SIZE, b"Q" * PAGE_SIZE)
        flat = BackingStore(CAP)
        flat.write(0, b"base" * (PAGE_SIZE // 4))
        flat.write(PAGE_SIZE, b"Q" * PAGE_SIZE)
        assert stack.content_digest() == flat.content_digest()

    def test_promote_is_idempotent(self):
        base, stack = self._stack()
        assert SnapshotStack.promote(stack) is stack


# ----------------------------------------------------------------------
# SystemSnapshot
# ----------------------------------------------------------------------
class TestSystemSnapshot:
    def _run_and_capture(self):
        from repro.mods.generic_kvs import GenericKVS
        from repro.sim.check import reset_global_counters
        from repro.system import LabStorSystem

        reset_global_counters()
        sys_ = LabStorSystem(devices=("nvme",))
        sys_.mount_kvs_stack("kvs::/s", variant="min", uuid_prefix="sn")
        kvs = GenericKVS(sys_.client(), "kvs::/s")

        def fill():
            for i in range(8):
                yield from kvs.put(f"k{i}", bytes([i + 1]) * 600)

        sys_.run(sys_.process(fill()))
        snap = SystemSnapshot.capture(sys_, tag="t0", drain=True)
        return sys_, kvs, snap

    def test_capture_then_verify_clean(self):
        sys_, _kvs, snap = self._run_and_capture()
        assert snap.verify_against(sys_) == []
        sys_.shutdown()

    def test_restore_into_fresh_system_reproduces_state(self):
        from repro.mods.generic_kvs import GenericKVS
        from repro.sim.check import reset_global_counters
        from repro.system import LabStorSystem

        sys_, _kvs, snap = self._run_and_capture()
        sys_.shutdown()
        reset_global_counters()
        fresh = LabStorSystem(devices=("nvme",))
        fresh.mount_kvs_stack("kvs::/s", variant="min", uuid_prefix="sn")
        kvs2 = GenericKVS(fresh.client(), "kvs::/s")
        snap.restore_into(fresh)
        # before driving any ops, the restored state digests must match
        snap2 = SystemSnapshot.capture(fresh, tag="t1")
        assert snap2.state_digests() == snap.state_digests()

        def check():
            return (yield from kvs2.get("k3"))

        assert fresh.run(fresh.process(check())) == bytes([4]) * 600
        fresh.shutdown()

    def test_snapshot_is_picklable_and_sized(self):
        sys_, _kvs, snap = self._run_and_capture()
        blob = pickle.dumps(snap)
        assert len(blob) == snap.size_bytes() or len(blob) > 0
        back = pickle.loads(blob)
        assert back.state_digests() == snap.state_digests()
        sys_.shutdown()

    def test_diff_reports_pages_dirtied_after_capture(self):
        from repro.mods.generic_kvs import GenericKVS

        sys_, kvs, snap = self._run_and_capture()

        def more():
            yield from kvs.put("extra", b"Z" * 5000)

        sys_.run(sys_.process(more()))
        snap2 = SystemSnapshot.capture(sys_, tag="t1")
        d = snap.diff(snap2)
        assert any(v["changed_pages"] for v in d["pages"].values())
        sys_.shutdown()

    def test_capture_does_not_perturb_digest(self):
        """The core COW property at system level: capturing between two
        env.run calls injects zero events."""
        out, _snap = snapshot_run(BatchingProgram())
        from repro.snap import straight_run

        base = straight_run(BatchingProgram())
        assert out.digest == base.digest
        assert out.result == base.result


# ----------------------------------------------------------------------
# snapshot tree
# ----------------------------------------------------------------------
class TestSnapshotTree:
    def test_plant_branch_rewind_diff(self):
        tree = SnapshotTree(BatchingProgram())
        root = tree.plant(label="root")
        a = tree.branch(root, label="a", run_ns=100_000)
        b = tree.branch(root, label="b", run_ns=200_000)
        assert root.children == [a, b]
        assert a.time_ns == root.time_ns + 100_000
        assert b.path() == [root, b]
        # rewinding a branch must verify byte-identical replayed state
        restored = tree.rewind(a)
        assert restored.env.now == a.time_ns
        d = tree.diff(root, b)
        assert "pages" in d and "mods" in d
        s = tree.summary()
        assert s["nodes"] == 3 and s["leaves"] == 2

    def test_branch_past_completion_rejected(self):
        tree = SnapshotTree(BatchingProgram())
        root = tree.plant()
        with pytest.raises(SnapshotError, match="completion"):
            tree.branch(root, label="too-far", run_ns=10**9)

    def test_rewind_detects_divergent_state(self):
        tree = SnapshotTree(BatchingProgram())
        root = tree.plant()
        # corrupt the captured digest ledger: restore must refuse
        cap = next(iter(root.snapshot.state.deployments.values()))
        dev = cap.devices["nvme"]
        dev.content_digest = "0" * 64
        with pytest.raises(ReplayDivergence):
            tree.rewind(root)


# ----------------------------------------------------------------------
# snapshot tree × crash-consistency audit (time-travel debugging)
# ----------------------------------------------------------------------
class _AuditFsProgram(Program):
    """Test-local FS workload with NO baked-in faults: power cuts are
    injected per tree branch, then every node is audited after rewind."""

    name = "audit-fs"
    default_pause_ns = int(msec(0.5))
    NFILES = 56

    def build(self, env):
        from repro.faults import CrashConsistencyChecker, RetryPolicy
        from repro.mods.generic_fs import GenericFS
        from repro.system import LabStorSystem

        system = LabStorSystem(env=env, seed=self.seed, devices=("nvme",))
        system.mount_fs_stack("fs::/audit", variant="min")
        retry = RetryPolicy(max_attempts=6, timeout_ns=int(msec(50)))
        gfs = GenericFS(system.client(), retry=retry)
        return SimpleNamespace(
            system=system, gfs=gfs, checker=CrashConsistencyChecker(),
        )

    def drive(self, ctx):
        system, gfs, checker = ctx.system, ctx.gfs, ctx.checker
        env = system.env

        def go():
            acked = 0
            for i in range(self.NFILES):
                path = f"fs::/audit/f{i}"
                data = bytes([(i + 1) % 251]) * 4096
                checker.begin(path, data)
                try:
                    yield from gfs.write_file(path, data)
                except Exception:  # noqa: BLE001 - injected cut: move on
                    continue
                checker.ack(path)
                acked += 1
                yield env.timeout(int(usec(40)))  # spread the write stream
            # idle tail: branches need the run still alive to grow from
            yield env.timeout(int(msec(60)))
            return acked

        return system.process(go())

    def finish(self, ctx, value):
        report = ctx.system.run(ctx.system.process(ctx.checker.verify(ctx.gfs)))
        return {"acked": value, "consistency": report}


class _InstallFaults:
    """Deterministic branch mutation: replays identically on every
    later rewind of the branched node."""

    def __init__(self, plan: str) -> None:
        self.plan = plan

    def __call__(self, ctx) -> None:
        ctx.system.install_faults(self.plan)


def _ledger(restored):
    return {"checker": restored.ctx.checker.export_state()}


class TestSnapshotTreeCrashAudit:
    # covers cut offset + restart_after + the 5ms restart exec window
    RUN_NS = int(msec(7.0))

    @staticmethod
    def _cut(node):
        at = node.time_ns + int(usec(200))
        return _InstallFaults(
            f"power_cut:at={at},restart_after={int(usec(300))}")

    def test_audit_every_node_after_branched_power_cuts(self):
        from repro.faults import CrashConsistencyChecker

        tree = SnapshotTree(_AuditFsProgram())
        root = tree.plant(label="pristine")
        a = tree.branch(root, label="cut", run_ns=self.RUN_NS,
                        mutate=self._cut(root), meta_fn=_ledger)
        torn_at = root.time_ns + int(usec(200))
        b = tree.branch(
            root, label="torn+cut", run_ns=self.RUN_NS,
            mutate=_InstallFaults(
                f"torn_write:at={torn_at},device=nvme,op=write;"
                f"power_cut:at={torn_at},restart_after={int(usec(300))}"),
            meta_fn=_ledger)
        a2 = tree.branch(a, label="cut-again", run_ns=self.RUN_NS,
                         mutate=self._cut(a), meta_fn=_ledger)
        assert tree.summary()["nodes"] == 4

        def checker_of(node, ctx):
            if "checker" in node.meta:
                return CrashConsistencyChecker.load_state(node.meta["checker"])
            return ctx.checker  # root: the replayed ledger is the live one

        # the audit rewinds every node (replaying each branch's injected
        # cuts) and verifies prefix consistency of the recovered namespace
        reports = tree.audit_crash_consistency(checker_of, lambda ctx: ctx.gfs)
        assert set(reports) == {n.id for n in tree.walk()}
        assert all(r["acked_ok"] >= 1 for r in reports.values())
        # acked only grows down an edge: every branch replays its parent
        for child in (a, b, a2):
            assert len(child.meta["checker"]["acked"]) >= reports[root.id]["acked_ok"]
        assert len(a2.meta["checker"]["acked"]) >= len(a.meta["checker"]["acked"])
        # the mutation history replays: one crash on a's timeline, two on a2's
        assert tree.rewind(root).ctx.system.runtime.crashes == 0
        assert tree.rewind(a).ctx.system.runtime.crashes == 1
        assert tree.rewind(a2).ctx.system.runtime.crashes == 2
        # and the cut branch visibly dirtied device pages vs the root
        d = tree.diff(root, a)
        assert any(v["changed_pages"] for v in d["pages"].values())
