"""repro.faults: plans, injectors, retry policies, crash consistency."""

import pytest

from repro.core.runtime import RuntimeConfig
from repro.errors import (
    ConsistencyError,
    LabStorError,
    MediaError,
    QueueFull,
    RetriesExhausted,
    TimeoutError,
    WorkerCrashed,
)
from repro.faults import (
    CrashConsistencyChecker,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    plan_from_env,
    torn_prefix_len,
)
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.units import msec, usec


def _system(plan=None, **cfg):
    cfg.setdefault("nworkers", 1)
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(**cfg),
                         fault_plan=plan)
    sys_.stack("fs::/t").fs(variant="min").device("nvme").uuid_prefix("t").mount()
    return sys_


def _write_files(sys_, gfs, n, bs=4096):
    def go():
        acked = 0
        for i in range(n):
            try:
                yield from gfs.write_file(f"fs::/t/f{i}", bytes([i % 251]) * bs)
            except Exception:  # noqa: BLE001 - giveups are part of the scenario
                continue
            acked += 1
        return acked

    return sys_.run(sys_.process(go()))


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trips(self):
        text = ("media_error:device=nvme,op=write,probability=0.2,count=3;"
                "latency:device=nvme,every=2ms,extra_ns=50us;"
                "power_cut:at=5ms,restart_after=1ms")
        plan = FaultPlan.parse(text)
        assert len(plan.specs) == 3
        assert plan.specs[0].probability == 0.2
        assert plan.specs[1].every == msec(2)
        assert plan.specs[2].restart_after == msec(1)
        assert FaultPlan.parse(plan.to_text()).specs == plan.specs

    def test_unknown_kind_rejected(self):
        with pytest.raises(LabStorError, match="kind"):
            FaultSpec(kind="gamma_ray")

    def test_spec_needs_a_trigger(self):
        with pytest.raises(LabStorError, match="trigger"):
            FaultSpec(kind="media_error", device="nvme")

    def test_latency_needs_extra_ns(self):
        with pytest.raises(LabStorError, match="extra_ns"):
            FaultSpec(kind="latency", device="nvme", at=100)

    def test_power_cut_scenario_shape(self):
        plan = FaultPlan.power_cut_scenario(at=int(msec(2)), restart_after=100)
        kinds = sorted(s.kind for s in plan.specs)
        assert kinds == ["power_cut", "torn_write"]

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "qp_reject:probability=0.5,count=2")
        plan = plan_from_env()
        assert plan is not None and plan.specs[0].kind == "qp_reject"


# ---------------------------------------------------------------------------
# no plan -> zero-overhead fast path
# ---------------------------------------------------------------------------
def test_no_plan_leaves_fast_paths_unarmed(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    sys_ = _system()
    assert sys_.faults is None
    assert all(dev.faults is None for dev in sys_.devices.values())
    assert all(conn.qp.reject_hook is None for conn in sys_.runtime.ipc.conns.values())
    sys_.shutdown()


# ---------------------------------------------------------------------------
# device injectors + retry
# ---------------------------------------------------------------------------
def test_media_errors_surface_and_retry_absorbs_them():
    plan = FaultPlan.of(FaultSpec(kind="media_error", device="nvme", op="write",
                                  probability=1.0, count=4))
    sys_ = _system(plan)
    gfs = GenericFS(sys_.client(), retry=RetryPolicy(max_attempts=6))
    acked = _write_files(sys_, gfs, 8)
    assert acked == 8
    assert sys_.faults.injected["media_error"] == 4
    assert sys_.devices["nvme"].errors == 4
    assert gfs.retry.retries == 4
    sys_.shutdown()

def test_media_error_without_retry_raises_typed_error():
    plan = FaultPlan.of(FaultSpec(kind="media_error", device="nvme", op="write",
                                  probability=1.0, count=1))
    sys_ = _system(plan)
    gfs = GenericFS(sys_.client())

    def go():
        yield from gfs.write_file("fs::/t/f0", b"x" * 4096)

    with pytest.raises(MediaError):
        sys_.run(sys_.process(go()))
    sys_.shutdown()

def test_latency_injection_slows_identical_workload():
    def elapsed(plan):
        sys_ = _system(plan)
        _write_files(sys_, GenericFS(sys_.client()), 6)
        now = sys_.env.now
        sys_.shutdown()
        return now

    plan = FaultPlan.of(FaultSpec(kind="latency", device="nvme",
                                  probability=1.0, count=6,
                                  extra_ns=int(usec(500))))
    assert elapsed(plan) > elapsed(None) + 5 * usec(500)

def test_retries_exhausted_is_typed_and_counted():
    plan = FaultPlan.of(FaultSpec(kind="media_error", device="nvme", op="write",
                                  probability=1.0))  # unbounded
    sys_ = _system(plan)
    retry = RetryPolicy(max_attempts=3)
    gfs = GenericFS(sys_.client(), retry=retry)

    def go():
        yield from gfs.write_file("fs::/t/f0", b"x" * 4096)

    with pytest.raises(RetriesExhausted) as ei:
        sys_.run(sys_.process(go()))
    assert isinstance(ei.value.__cause__, MediaError)
    assert retry.gave_up == 1 and retry.retries == 2
    sys_.shutdown()

def test_retry_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_ns=100, backoff_factor=3, max_backoff_ns=500)
    assert [policy.backoff(i) for i in range(4)] == [100, 300, 500, 500]

def test_per_op_timeout_fails_the_event():
    # a stall longer than the timeout: the client op must fail, then succeed
    # on a later attempt once the stall ends
    plan = FaultPlan.of(FaultSpec(kind="stall", device="nvme",
                                  at=1, extra_ns=int(msec(2))))
    sys_ = _system(plan)
    retry = RetryPolicy(max_attempts=5, timeout_ns=int(usec(200)),
                        backoff_ns=int(usec(100)))
    gfs = GenericFS(sys_.client(), retry=retry)
    acked = _write_files(sys_, gfs, 1)
    assert acked == 1
    assert retry.retries >= 1
    sys_.shutdown()


# ---------------------------------------------------------------------------
# queue-pair rejection
# ---------------------------------------------------------------------------
def test_qp_reject_raises_queuefull_and_keeps_conservation():
    plan = FaultPlan.of(FaultSpec(kind="qp_reject", probability=1.0, count=3))
    sys_ = _system(plan)
    gfs = GenericFS(sys_.client(), retry=RetryPolicy(max_attempts=6))
    acked = _write_files(sys_, gfs, 5)
    assert acked == 5
    qps = [conn.qp for conn in sys_.runtime.ipc.conns.values()]
    assert sum(qp.rejected_total for qp in qps) == 3
    for qp in qps:
        assert qp.submitted_total == qp.completed_total + qp.inflight
    sys_.shutdown()

def test_qp_reject_without_retry_is_queuefull():
    plan = FaultPlan.of(FaultSpec(kind="qp_reject", probability=1.0, count=1))
    sys_ = _system(plan)
    gfs = GenericFS(sys_.client())

    def go():
        yield from gfs.write_file("fs::/t/f0", b"x" * 4096)

    with pytest.raises(QueueFull):
        sys_.run(sys_.process(go()))
    sys_.shutdown()


# ---------------------------------------------------------------------------
# worker crash
# ---------------------------------------------------------------------------
def test_worker_crash_respawns_and_completes_with_typed_error():
    plan = FaultPlan.of(FaultSpec(kind="worker_crash", at=int(usec(50))))
    sys_ = _system(plan, nworkers=1, max_workers=4)
    retry = RetryPolicy(max_attempts=6)
    gfs = GenericFS(sys_.client(), retry=retry)
    acked = _write_files(sys_, gfs, 12)
    assert acked == 12
    assert sys_.faults.injected["worker_crash"] == 1
    # the pool replaced the crashed worker
    assert sys_.runtime.orchestrator.worker_count() == 1
    qps = [conn.qp for conn in sys_.runtime.ipc.conns.values()]
    for qp in qps:
        assert qp.submitted_total == qp.completed_total + qp.inflight
    sys_.shutdown()

def test_worker_crashed_error_is_retryable_by_default():
    from repro.faults import DEFAULT_RETRYABLE

    assert WorkerCrashed in DEFAULT_RETRYABLE
    assert TimeoutError in DEFAULT_RETRYABLE


# ---------------------------------------------------------------------------
# power cut + crash consistency
# ---------------------------------------------------------------------------
def test_power_cut_recovers_acked_writes():
    plan = FaultPlan.power_cut_scenario(at=int(msec(1)),
                                        restart_after=int(msec(1)))
    sys_ = _system(plan)
    gfs = GenericFS(sys_.client(), retry=RetryPolicy(max_attempts=6,
                                                     timeout_ns=int(msec(50))))
    checker = CrashConsistencyChecker()

    def go():
        acked = 0
        for i in range(30):
            path = f"fs::/t/f{i}"
            data = bytes([i % 251]) * 4096
            checker.begin(path, data)
            try:
                yield from gfs.write_file(path, data)
            except Exception:  # noqa: BLE001
                continue
            checker.ack(path)
            acked += 1
        return acked

    acked = sys_.run(sys_.process(go()))
    assert sys_.runtime.crashes == 1
    assert sys_.faults.injected["power_cut"] == 1
    report = sys_.run(sys_.process(checker.verify(gfs)))
    assert report["acked_ok"] == acked
    labfs = sys_.runtime.registry.get("t.labfs")
    assert labfs.repairs >= 1
    sys_.shutdown()

def test_on_crash_drops_volatile_labfs_state():
    sys_ = _system()
    gfs = GenericFS(sys_.client())
    _write_files(sys_, gfs, 5)
    labfs = sys_.runtime.registry.get("t.labfs")
    assert len(labfs.inodes) > 1
    sys_.runtime.crash()
    # only the implicit root survives a crash; restart rebuilds from the log
    assert len(labfs.inodes) == 1 and "/" in labfs.by_path
    sys_.run(sys_.env.process(sys_.runtime.restart()))
    assert len(labfs.inodes) == 6  # root + 5 files
    sys_.shutdown()


class TestTornPrefix:
    def test_exact_prefix_detected(self):
        old = b"o" * 4096
        new = b"n" * 4096
        rec = new[:1024] + old[1024:]
        assert torn_prefix_len(old, new, rec) == 1024

    def test_full_old_and_full_new_are_prefixes(self):
        old, new = b"o" * 1024, b"n" * 1024
        assert torn_prefix_len(old, new, old) == 0
        assert torn_prefix_len(old, new, new) == 1024

    def test_non_sector_tear_is_not_a_prefix(self):
        old, new = b"o" * 4096, b"n" * 4096
        rec = new[:100] + old[100:]
        assert torn_prefix_len(old, new, rec) is None

    def test_checker_flags_corruption(self):
        # no cache: the verify read must observe the raw device blocks
        sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=1))
        (sys_.stack("fs::/t").fs(variant="min").device("nvme")
             .cache(False).uuid_prefix("t").mount())
        gfs = GenericFS(sys_.client())
        checker = CrashConsistencyChecker()
        data = b"d" * 4096
        checker.begin("fs::/t/f0", data)

        def go():
            yield from gfs.write_file("fs::/t/f0", data)

        sys_.run(sys_.process(go()))
        checker.ack("fs::/t/f0")
        # corrupt the acked file behind the checker's back (paths are
        # mount-relative in LabFS; blocks maps page -> device byte offset)
        labfs = sys_.runtime.registry.get("t.labfs")
        ino = labfs.inodes[labfs.by_path["/f0"]]
        sys_.devices["nvme"].store.write(ino.blocks[0], b"X" * 16)
        with pytest.raises(ConsistencyError):
            sys_.run(sys_.process(checker.verify(gfs)))
        sys_.shutdown()


# ---------------------------------------------------------------------------
# wiring: builder, env var, determinism
# ---------------------------------------------------------------------------
def test_builder_faults_installs_on_mount():
    plan = FaultPlan.of(FaultSpec(kind="qp_reject", probability=0.5, count=1))
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=1))
    assert sys_.faults is None
    sys_.stack("fs::/t").fs(variant="min").uuid_prefix("t").faults(plan).mount()
    assert sys_.faults is not None and len(sys_.faults.plan.specs) == 1
    sys_.shutdown()

def test_fault_plan_env_var_arms_system(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS",
                       "media_error:device=nvme,op=write,probability=1.0,count=2")
    sys_ = _system()
    gfs = GenericFS(sys_.client(), retry=RetryPolicy(max_attempts=4))
    acked = _write_files(sys_, gfs, 4)
    assert acked == 4
    assert sys_.faults.injected["media_error"] == 2
    sys_.shutdown()

def test_chaos_scenario_is_deterministic(determinism_check):
    from repro.sim.check import SCENARIOS

    determinism_check(SCENARIOS["faults"])
