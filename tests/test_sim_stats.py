"""Tests for repro.sim.stats, rng and trace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Counter,
    Histogram,
    LatencyRecorder,
    OnlineStats,
    RngRegistry,
    SpanAccumulator,
    Tracer,
    percentile,
)


# --- OnlineStats -----------------------------------------------------------
def test_online_stats_mean_var_minmax():
    s = OnlineStats()
    for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        s.add(x)
    assert s.mean == pytest.approx(5.0)
    assert s.stdev == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))
    assert s.min == 2.0 and s.max == 9.0


def test_online_stats_empty():
    s = OnlineStats()
    assert s.mean == 0.0
    assert s.variance == 0.0


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
    b=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
)
def test_property_merge_equals_combined(a, b):
    sa, sb, sc = OnlineStats(), OnlineStats(), OnlineStats()
    for x in a:
        sa.add(x)
        sc.add(x)
    for x in b:
        sb.add(x)
        sc.add(x)
    sa.merge(sb)
    assert sa.n == sc.n
    assert sa.mean == pytest.approx(sc.mean, rel=1e-6, abs=1e-6)
    assert sa.variance == pytest.approx(sc.variance, rel=1e-5, abs=1e-4)


def test_merge_with_empty():
    a, b = OnlineStats(), OnlineStats()
    a.add(5.0)
    a.merge(b)
    assert a.n == 1
    b.merge(a)
    assert b.mean == 5.0


# --- LatencyRecorder ----------------------------------------------------------
def test_latency_recorder_exact_percentiles():
    r = LatencyRecorder()
    for x in range(1, 101):
        r.add(float(x))
    assert r.p50 == pytest.approx(50.5)
    assert r.p99 == pytest.approx(99.01)
    assert r.mean == pytest.approx(50.5)


def test_latency_recorder_reservoir_bounds_memory():
    r = LatencyRecorder(reservoir=100)
    for x in range(10_000):
        r.add(float(x))
    assert len(r._samples) == 100
    assert r.count == 10_000
    # reservoir keeps the percentile roughly unbiased
    assert 3000 < r.p50 < 7000


def test_latency_recorder_empty_summary():
    assert LatencyRecorder().summary()["count"] == 0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


# --- Histogram -------------------------------------------------------------
def test_histogram_quantiles_log_buckets():
    h = Histogram(min_ns=1, max_ns=10**9)
    for v in [10, 100, 1000, 10_000]:
        h.add(v)
    assert h.total == 4
    q = h.quantile(0.5)
    assert 64 <= q <= 256  # bucket upper bound around the median


def test_histogram_empty_quantile_raises():
    with pytest.raises(ValueError):
        Histogram().quantile(0.5)


def test_histogram_clamps_out_of_range():
    h = Histogram(min_ns=10, max_ns=1000)
    h.add(1)       # below min
    h.add(10**9)   # above max
    assert h.total == 2


# --- Counter ---------------------------------------------------------------
def test_counter_inc_and_get():
    c = Counter()
    c.inc("ops")
    c.inc("ops", 5)
    assert c["ops"] == 6
    assert c["missing"] == 0
    assert c.asdict() == {"ops": 6}


# --- RngRegistry --------------------------------------------------------------
def test_named_streams_are_stable_and_independent():
    r = RngRegistry(seed=7)
    a1 = r.stream("device.nvme").integers(0, 1000, 5).tolist()
    b1 = r.stream("workload.fio").integers(0, 1000, 5).tolist()
    r2 = RngRegistry(seed=7)
    b2 = r2.stream("workload.fio").integers(0, 1000, 5).tolist()
    a2 = r2.stream("device.nvme").integers(0, 1000, 5).tolist()
    # same names -> same draws regardless of creation order
    assert a1 == a2 and b1 == b2
    assert a1 != b1


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").integers(0, 10**9)
    b = RngRegistry(seed=2).stream("x").integers(0, 10**9)
    assert a != b


def test_spawn_subregistry_independent():
    root = RngRegistry(seed=3)
    child = root.spawn("pfs")
    assert child.stream("x").integers(0, 10**9) != root.stream("x").integers(0, 10**9)


# --- Tracer / SpanAccumulator ----------------------------------------------------
def test_tracer_disabled_by_default_costs_nothing():
    t = Tracer()
    t.emit(0, "span", name="x", dur_ns=5)
    assert t.events == []


def test_span_accumulator_sums_durations():
    t = Tracer()
    acc = SpanAccumulator()
    t.add_sink(acc)
    t.emit(0, "span", name="io", dur_ns=10)
    t.emit(5, "span", name="io", dur_ns=30)
    t.emit(9, "span", name="cpu", dur_ns=60)
    t.emit(9, "other", name="ignored")
    assert acc.totals == {"io": 40, "cpu": 60}
    assert acc.counts == {"io": 2, "cpu": 1}
    assert acc.fractions() == {"cpu": 0.6, "io": 0.4}


def test_span_accumulator_empty_fractions():
    assert SpanAccumulator().fractions() == {}


def test_histogram_quantile_zero_reports_lowest_occupied_bucket():
    """Regression (ISSUE 1): quantile(0.0) used to return bucket 0's bound
    even when that bucket was empty."""
    h = Histogram(min_ns=1)
    h.add(10**6)
    lo, hi = 2 ** 19, 2 ** 21  # 1e6 falls in the [2^19, 2^20) bucket
    assert lo <= h.quantile(0.0) <= hi
    assert h.quantile(0.0) == h.quantile(1.0)

# --- ISSUE 6 regressions: histogram clamping, p999, empty-recorder errors ---
def test_histogram_quantile_never_exceeds_max_ns():
    """Regression (ISSUE 6): bucket_bounds() reported the unclamped upper
    bound, so quantile() could exceed max_ns even though add() clamps every
    sample to it."""
    h = Histogram(min_ns=10, max_ns=1000)
    h.add(5000)  # clamped to 1000 on add
    assert h.quantile(1.0) == 1000
    assert h.quantile(0.5) == 1000
    lo, hi = h.bucket_bounds(len(h.buckets) - 1)
    assert lo <= h.max_ns and hi <= h.max_ns


def test_histogram_default_cap_clamped_too():
    h = Histogram()  # max_ns = 10**12
    h.add(10**15)
    assert h.quantile(1.0) <= 10**12


def test_histogram_bucket_bounds_unaffected_below_max():
    h = Histogram(min_ns=1, max_ns=1024)
    assert h.bucket_bounds(3) == (8, 16)


def test_latency_recorder_p999_and_summary_key():
    r = LatencyRecorder()
    for x in range(1, 10_001):
        r.add(float(x))
    assert r.p999 == pytest.approx(9990.001, rel=1e-6)
    s = r.summary()
    assert s["p999"] == pytest.approx(r.p999)
    assert s["p50"] <= s["p99"] <= s["p999"]
    assert LatencyRecorder().summary()["p999"] == 0.0


def test_latency_recorder_pcts_single_pass_consistent():
    r = LatencyRecorder()
    for x in range(100):
        r.add(float(x))
    p50, p99, p999 = r.pcts((50, 99, 99.9))
    assert (p50, p99, p999) == (r.pct(50), r.pct(99), r.pct(99.9))


def test_empty_recorder_pct_names_the_recorder():
    r = LatencyRecorder(name="frontend.e2e")
    with pytest.raises(ValueError, match="frontend.e2e"):
        r.pct(50)
    with pytest.raises(ValueError, match="empty"):
        LatencyRecorder().pct(50)  # unnamed recorders still raise clearly


# --- property-style checks: reservoir fidelity, merge across splits --------
def test_property_reservoir_percentiles_track_exact():
    """A 10k reservoir over a deterministic 100k-sample stream must land
    within a small tolerance of the exact p50/p99/p999."""
    rng = np.random.default_rng(42)
    samples = rng.lognormal(mean=10.0, sigma=1.0, size=100_000)
    r = LatencyRecorder(reservoir=10_000, rng=np.random.default_rng(7))
    exact = LatencyRecorder()
    for x in samples:
        r.add(float(x))
        exact.add(float(x))
    assert r.count == exact.count == 100_000
    assert len(r._samples) == 10_000
    got = r.pcts((50, 99, 99.9))
    want = exact.pcts((50, 99, 99.9))
    for g, w, tol in zip(got, want, (0.05, 0.10, 0.20)):
        assert abs(g - w) / w < tol, (g, w)
    # the online moments never go through the reservoir: they stay exact
    assert r.mean == pytest.approx(exact.mean)
    assert r.stats.max == exact.stats.max


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), nsplits=st.integers(2, 8))
def test_property_merge_matches_single_pass_across_random_splits(seed, nsplits):
    rng = np.random.default_rng(seed)
    data = rng.normal(loc=50.0, scale=20.0, size=500)
    cuts = sorted(rng.integers(0, len(data), size=nsplits - 1).tolist())
    whole = OnlineStats()
    for x in data:
        whole.add(float(x))
    merged = OnlineStats()
    for chunk in np.split(data, cuts):
        part = OnlineStats()
        for x in chunk:
            part.add(float(x))
        merged.merge(part)
    assert merged.n == whole.n
    assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)
    assert merged.variance == pytest.approx(whole.variance, rel=1e-7, abs=1e-7)
    assert merged.min == whole.min and merged.max == whole.max
