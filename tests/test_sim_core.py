"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt, StopSimulation


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)
        assert env.now == 100
        yield env.timeout(50)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 150
    assert env.now == 150


def test_zero_delay_timeout():
    env = Environment()

    def proc():
        yield env.timeout(0)
        return "done"

    assert env.run(env.process(proc())) == "done"
    assert env.now == 0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(10)
        return 42

    def parent():
        value = yield env.process(child())
        return value * 2

    assert env.run(env.process(parent())) == 84


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    log = []

    def waiter():
        value = yield ev
        log.append((env.now, value))

    def trigger():
        yield env.timeout(30)
        ev.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert log == [(30, "payload")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "handled"

    def trigger():
        yield env.timeout(5)
        ev.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(p) == "handled"


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("crashed process")

    env.process(bad())
    with pytest.raises(RuntimeError, match="crashed process"):
        env.run()


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(20, value="b")
        result = yield env.all_of([t1, t2])
        assert env.now == 20
        return [result[t1], result[t2]]

    assert env.run(env.process(proc())) == ["a", "b"]


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(99, value="slow")
        result = yield env.any_of([t1, t2])
        assert env.now == 10
        assert t1 in result
        return result[t1]

    assert env.run(env.process(proc())) == "fast"


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(target):
        yield env.timeout(40)
        target.interrupt("decommissioned")

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert log == [(40, "decommissioned")]


def test_interrupted_process_can_rewait():
    """After an interrupt the original event still stands and can be re-yielded."""
    env = Environment()

    def victim():
        t = env.timeout(100)
        try:
            yield t
        except Interrupt:
            pass
        yield t  # re-wait for the same timeout
        return env.now

    def attacker(target):
        yield env.timeout(10)
        target.interrupt()

    p = env.process(victim())
    env.process(attacker(p))
    assert env.run(p) == 100


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(7)

    env.process(ticker())
    env.run(until=100)
    assert env.now == 100


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(10)
    env.run()
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_determinism_same_seed_same_trace():
    def build_and_run():
        env = Environment()
        order = []

        def proc(name, delay):
            yield env.timeout(delay)
            order.append((env.now, name))

        for i in range(10):
            env.process(proc(f"p{i}", (i * 37) % 11))
        env.run()
        return order

    assert build_and_run() == build_and_run()


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(10)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_yield_non_event_rejected():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.event()

    def trigger():
        yield env.timeout(3)
        ev.succeed("v")

    env.process(trigger())
    assert env.run(until=ev) == "v"


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()
    assert env.run(until=ev) == "early"


def test_process_is_alive():
    env = Environment()

    def proc():
        yield env.timeout(10)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_condition_with_failed_subevent_fails():
    env = Environment()
    ev1 = env.event()
    ev2 = env.event()

    def trigger():
        yield env.timeout(1)
        ev1.fail(KeyError("inner"))
        ev2.succeed()

    def waiter():
        with pytest.raises(KeyError):
            yield env.all_of([ev1, ev2])
        return True

    env.process(trigger())
    p = env.process(waiter())
    assert env.run(p) is True


# --- regressions: ISSUE 1 satellite fixes -------------------------------
def test_any_of_late_failure_on_losing_subevent_is_defused():
    """A sub-event failing *after* an any_of already triggered must not
    crash Environment.step() (the condition defuses it)."""
    env = Environment()
    winner, loser = env.event(), env.event()
    results = []

    def waiter():
        cond = yield env.any_of([winner, loser])
        results.append(winner in cond)

    def driver():
        yield env.timeout(10)
        winner.succeed("first")
        yield env.timeout(10)
        loser.fail(RuntimeError("too late"))

    env.process(waiter())
    env.process(driver())
    env.run()  # must not raise
    assert results == [True]
    assert loser.triggered and not loser.ok


def test_any_of_late_failure_of_unsubscribed_subevent_is_defused():
    """Same class of bug via the constructor path: when one sub-event is
    already processed, the remaining ones must still be watched so their
    later failures are absorbed."""
    env = Environment()
    done = env.event()
    done.succeed("early")
    env.run()  # process `done` so Condition sees callbacks=None
    late = env.event()

    def waiter():
        yield env.any_of([done, late])

    def driver():
        yield env.timeout(5)
        late.fail(ValueError("nobody is watching"))

    env.process(waiter())
    env.process(driver())
    env.run()  # must not raise


def test_run_until_event_does_not_drop_other_waiters():
    """run(until=event) used to raise StopSimulation mid-callback-loop,
    so other processes waiting on the same event never resumed."""
    env = Environment()
    ev = env.event()
    log = []

    def other():
        yield ev
        log.append("resumed")
        yield env.timeout(5)
        log.append("done")

    def trigger():
        yield env.timeout(10)
        ev.succeed("v")

    env.process(other())
    env.process(trigger())
    assert env.run(until=ev) == "v"
    assert log == ["resumed"]  # the co-waiter got its callback
    env.run()  # continue past the stop point
    assert log == ["resumed", "done"]


def test_run_until_failed_event_still_raises():
    env = Environment()
    ev = env.event()

    def trigger():
        yield env.timeout(1)
        ev.fail(KeyError("bad"))

    env.process(trigger())
    with pytest.raises(KeyError):
        env.run(until=ev)


def test_daemon_flag_defaults_false_and_is_settable():
    env = Environment()

    def proc():
        yield env.timeout(1)

    p = env.process(proc())
    d = env.process(proc(), daemon=True)
    assert not p.daemon and d.daemon
    env.run()
