"""Tests for the LabStorSystem facade and canonical stack builders."""

import pytest

from repro.devices.profiles import DeviceSpec
from repro.errors import LabStorError, StackValidationError
from repro.system import LabStorSystem, VARIANTS


def test_default_system_builds_nvme():
    sys_ = LabStorSystem()
    assert "nvme" in sys_.devices
    assert sys_.runtime.online


def test_multiple_devices():
    sys_ = LabStorSystem(devices=("nvme", "pmem", "hdd"))
    assert set(sys_.devices) == {"nvme", "pmem", "hdd"}


def test_device_spec_overrides_apply():
    sys_ = LabStorSystem(devices=[DeviceSpec("nvme", nqueues=16)])
    assert sys_.devices["nvme"].nqueues == 16


def test_device_overrides_dict_deprecated_but_working():
    with pytest.warns(DeprecationWarning, match="device_overrides"):
        sys_ = LabStorSystem(devices=("nvme",), device_overrides={"nvme": {"nqueues": 16}})
    assert sys_.devices["nvme"].nqueues == 16


@pytest.mark.parametrize("variant", VARIANTS)
def test_fs_stack_variants_structure(variant):
    sys_ = LabStorSystem()
    stack = sys_.mount_fs_stack(f"fs::/{variant}", variant=variant)
    uuids = stack.mod_uuids()
    has_perm = any(u.endswith("perm") for u in uuids)
    assert has_perm == (variant == "all")
    assert stack.exec_mode == ("sync" if variant == "d" else "async")
    assert any(u.endswith("labfs") for u in uuids)
    assert any(u.endswith("driver") for u in uuids)


def test_kvs_stack_has_no_cache():
    sys_ = LabStorSystem()
    stack = sys_.mount_kvs_stack("kvs::/k", variant="all")
    assert not any(u.endswith("lru") for u in stack.mod_uuids())
    assert any(u.endswith("labkvs") for u in stack.mod_uuids())


def test_invalid_variant_rejected():
    sys_ = LabStorSystem()
    with pytest.raises(LabStorError, match="variant"):
        sys_.stack("fs::/x").fs(variant="turbo")


def test_blkswitch_sched_option():
    sys_ = LabStorSystem()
    stack = sys_.mount_fs_stack("fs::/b", variant="min", sched="BlkSwitchSchedMod")
    sched_uuid = next(u for u in stack.mod_uuids() if u.endswith("sched"))
    assert type(stack.mods[sched_uuid]).__name__ == "BlkSwitchSchedMod"


def test_spdk_driver_option_requires_nvme():
    sys_ = LabStorSystem(devices=("nvme",))
    stack = sys_.mount_fs_stack("fs::/s", variant="min", driver="SpdkDriverMod")
    assert any(u.endswith("driver") for u in stack.mod_uuids())
    sys2 = LabStorSystem(devices=("hdd",))
    with pytest.raises(LabStorError):
        sys2.mount_fs_stack("fs::/h", variant="min", device="hdd", driver="SpdkDriverMod")


def test_clients_get_unique_pids_and_qps():
    sys_ = LabStorSystem()
    c1, c2 = sys_.client(), sys_.client()
    assert c1.pid != c2.pid
    assert c1.conn.qp.qid != c2.conn.qp.qid
    assert len(sys_.runtime.ipc.conns) == 2


def test_seed_controls_device_rng_stream():
    a = LabStorSystem(seed=1)
    b = LabStorSystem(seed=1)
    assert (
        a.rngs.stream("device.nvme").integers(0, 10**9)
        == b.rngs.stream("device.nvme").integers(0, 10**9)
    )
