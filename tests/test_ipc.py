"""Tests for the IPC layer (shared memory grants, queue pairs, manager)."""

import pytest

from repro.errors import IpcError, ShmAccessError
from repro.ipc import Completion, IpcManager, QueueFlag, QueuePair, ShMemManager
from repro.sim import Environment


def run(env, gen):
    return env.run(env.process(gen))


# --- shared memory -----------------------------------------------------
def test_segment_grant_and_check():
    env = Environment()
    mgr = ShMemManager(env, runtime_pid=1)

    def proc():
        seg = yield env.process(mgr.alloc(4096))
        seg.grant(42)
        seg.check(42)  # ok
        with pytest.raises(ShmAccessError):
            seg.check(99)
        return seg

    seg = run(env, proc())
    assert seg.is_granted(1)  # owner


def test_map_requires_grant():
    env = Environment()
    mgr = ShMemManager(env)

    def proc():
        seg = yield env.process(mgr.alloc(4096))
        with pytest.raises(ShmAccessError):
            yield env.process(mgr.map_into(seg, 7))
        seg.grant(7)
        yield env.process(mgr.map_into(seg, 7))
        return seg

    seg = run(env, proc())
    assert 7 in seg.mapped


def test_revoke_removes_access():
    env = Environment()
    mgr = ShMemManager(env)

    def proc():
        seg = yield env.process(mgr.alloc(4096))
        seg.grant(5)
        seg.revoke(5)
        with pytest.raises(ShmAccessError):
            seg.check(5)
        with pytest.raises(ShmAccessError):
            seg.revoke(1)  # owner's grant is permanent
        return True

    assert run(env, proc())


# --- queue pairs -----------------------------------------------------------
def test_qp_submit_pop_complete_roundtrip():
    env = Environment()
    qp = QueuePair(env, pop_cost_ns=100)
    results = []

    def client():
        qp.submit({"op": "hello"})
        comp = yield env.process(qp.pop_completion())
        results.append((env.now, comp.value))

    def worker():
        req = yield env.process(qp.pop_request())
        qp.complete(Completion(req, value="done"))

    env.process(client())
    env.process(worker())
    env.run()
    # two pops, each charging the 100ns hop
    assert results == [(200, "done")]
    assert qp.submitted_total == 1 and qp.completed_total == 1 and qp.inflight == 0


def test_qp_access_check_on_shared_segment():
    env = Environment()
    mgr = ShMemManager(env)

    def proc():
        seg = yield env.process(mgr.alloc(4096))
        seg.grant(10)
        qp = QueuePair(env, segment=seg)
        qp.submit("ok", pid=10)
        with pytest.raises(ShmAccessError):
            qp.submit("nope", pid=11)
        return True

    assert run(env, proc())


def test_qp_completion_without_submission_rejected():
    env = Environment()
    qp = QueuePair(env)
    with pytest.raises(IpcError):
        qp.complete(Completion(None))


def test_qp_drained_event():
    env = Environment()
    qp = QueuePair(env)
    drained_at = []

    def watcher():
        yield qp.drained()  # nothing in flight: immediate
        qp.submit("r1")
        qp.submit("r2")
        ev = qp.drained()
        yield ev
        drained_at.append(env.now)

    def worker():
        yield env.timeout(10)
        for _ in range(2):
            req = yield env.process(qp.pop_request())
            yield env.timeout(50)
            qp.complete(Completion(req))

    env.process(watcher())
    env.process(worker())
    env.run()
    assert len(drained_at) == 1
    assert drained_at[0] >= 110


def test_qp_upgrade_flags_protocol():
    env = Environment()
    qp = QueuePair(env, primary=True)
    qp.mark_update_pending()
    assert qp.flag is QueueFlag.UPDATE_PENDING
    qp.ack_update()
    assert qp.flag is QueueFlag.UPDATE_ACKED
    qp.resume()
    assert qp.flag is QueueFlag.NORMAL


def test_qp_ack_without_pending_rejected():
    env = Environment()
    qp = QueuePair(env)
    with pytest.raises(IpcError):
        qp.ack_update()


def test_intermediate_qp_rejects_upgrade_marking():
    env = Environment()
    qp = QueuePair(env, primary=False)
    with pytest.raises(IpcError):
        qp.mark_update_pending()


def test_qp_est_queued_tracking():
    env = Environment()
    qp = QueuePair(env)

    class Req:
        est_ns = 500

    qp.submit(Req())
    qp.submit(Req())
    assert qp.est_queued_ns == 1000
    assert qp.try_pop_request() is not None
    assert qp.est_queued_ns == 500


# --- IPC manager -------------------------------------------------------
def test_connect_builds_granted_primary_qp():
    env = Environment()
    ipc = IpcManager(env)

    def proc():
        conn = yield env.process(ipc.connect(pid=100))
        return conn

    conn = run(env, proc())
    assert conn.qp.primary
    assert conn.segment.is_granted(100)
    assert ipc.get_qp(conn.qp.qid) is conn.qp
    assert env.now > 0  # handshake + mapping took time


def test_double_connect_rejected():
    env = Environment()
    ipc = IpcManager(env)

    def proc():
        yield env.process(ipc.connect(pid=5))
        with pytest.raises(IpcError):
            yield env.process(ipc.connect(pid=5))
        return True

    assert run(env, proc())


def test_disconnect_then_reconnect():
    env = Environment()
    ipc = IpcManager(env)

    def proc():
        conn1 = yield env.process(ipc.connect(pid=5))
        conn2 = yield env.process(ipc.reconnect(pid=5))
        return conn1, conn2

    conn1, conn2 = run(env, proc())
    assert conn1.qp.qid != conn2.qp.qid
    assert conn1.qp.qid not in ipc.qps


def test_on_connect_callback_fires():
    env = Environment()
    ipc = IpcManager(env)
    seen = []
    ipc.on_connect(lambda conn: seen.append(conn.pid))

    def proc():
        yield env.process(ipc.connect(pid=9))

    run(env, proc())
    assert seen == [9]


def test_intermediate_qp_cheaper_hop():
    env = Environment()
    ipc = IpcManager(env)
    qp = ipc.make_intermediate_qp()
    assert not qp.primary
    assert qp.pop_cost_ns < ipc.cost.shm_hop_ns


def test_unknown_qid():
    env = Environment()
    ipc = IpcManager(env)
    with pytest.raises(IpcError):
        ipc.get_qp(99999)


# --- regressions: ISSUE 1 queue-pair accounting -------------------------
class _Req:
    def __init__(self, est_ns=1000):
        self.est_ns = est_ns


def test_submit_counts_only_when_sq_accepts():
    """With a full ring the put blocks; counters must not move until the
    entry actually lands in the SQ."""
    env = Environment()
    qp = QueuePair(env, depth=1)
    qp.submit(_Req(est_ns=100))
    qp.submit(_Req(est_ns=200))  # ring full: this putter blocks
    assert qp.submitted_total == 1
    assert qp.inflight == 1
    assert qp.est_queued_ns == 100
    # popping frees the slot: the blocked entry is accepted synchronously
    assert qp.try_pop_request() is not None
    assert qp.submitted_total == 2
    assert qp.inflight == 2
    assert qp.est_queued_ns == 200


def test_complete_without_submission_raises_before_mutating():
    env = Environment()
    qp = QueuePair(env)
    with pytest.raises(IpcError, match="completion without submission"):
        qp.complete(Completion(None))
    assert qp.inflight == 0
    assert qp.completed_total == 0
    assert qp.submitted_total == 0


def test_est_queued_deducted_at_pop_not_after_hop():
    env = Environment()
    qp = QueuePair(env, pop_cost_ns=500)
    qp.submit(_Req(est_ns=750))
    got = []

    def worker():
        req = yield from qp.pop_request()
        got.append(req)

    env.process(worker())
    env.run()
    assert got[0].est_ns == 750
    assert qp.est_queued_ns == 0


def test_submit_total_conservation_through_lifecycle():
    env = Environment()
    qp = QueuePair(env)

    def proc():
        yield qp.submit(_Req())
        yield qp.submit(_Req())

    env.run(env.process(proc()))
    qp.try_pop_request()
    qp.complete(Completion(None))
    assert qp.submitted_total == qp.completed_total + qp.inflight == 2
