"""Tests for LabFS directories and the PrefetchMod."""

import pytest

from repro.core import NodeSpec
from repro.errors import FsError
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.units import KiB


def make(variant="min", **stack_kw):
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/t", variant=variant, **stack_kw)
    return sys_, GenericFS(sys_.client())


def run(sys_, gen):
    return sys_.run(sys_.process(gen))


def labfs_of(sys_):
    uuid = next(u for u in sys_.runtime.registry.uuids() if u.endswith("labfs"))
    return sys_.runtime.registry.get(uuid)


# --- directories ----------------------------------------------------------
def test_mkdir_readdir_roundtrip():
    sys_, gfs = make()

    def proc():
        yield from gfs.mkdir("fs::/t/proj")
        yield from gfs.write_file("fs::/t/proj/a.txt", b"a")
        yield from gfs.write_file("fs::/t/proj/b.txt", b"b")
        return (yield from gfs.readdir("fs::/t/proj"))

    assert run(sys_, proc()) == ["a.txt", "b.txt"]


def test_create_autocreates_parents_by_default():
    sys_, gfs = make()

    def proc():
        yield from gfs.write_file("fs::/t/deep/nested/dir/file", b"x")
        names = yield from gfs.readdir("fs::/t/deep/nested/dir")
        st_ = yield from gfs.stat("fs::/t/deep/nested")
        return names, st_

    names, st_ = run(sys_, proc())
    assert names == ["file"]
    assert st_["is_dir"] is True


def test_strict_paths_requires_parent():
    sys_ = LabStorSystem(devices=("nvme",))
    spec = sys_.stack("fs::/s").fs(variant="min").build()
    next(n for n in spec.nodes if n.uuid.endswith("labfs")).attrs["strict_paths"] = True
    sys_.runtime.mount_stack(spec)
    gfs = GenericFS(sys_.client())

    def proc():
        with pytest.raises(FsError, match="ENOENT"):
            yield from gfs.open("fs::/s/missing/f", create=True)
        yield from gfs.mkdir("fs::/s/missing")
        fd = yield from gfs.open("fs::/s/missing/f", create=True)
        return fd

    assert run(sys_, proc()) >= 3


def test_mkdir_existing_rejected():
    sys_, gfs = make()

    def proc():
        yield from gfs.mkdir("fs::/t/d")
        with pytest.raises(FsError, match="EEXIST"):
            yield from gfs.mkdir("fs::/t/d")
        return True

    assert run(sys_, proc())


def test_rmdir_nonempty_rejected_then_empty_ok():
    sys_, gfs = make()

    def proc():
        yield from gfs.write_file("fs::/t/d/f", b"x")
        with pytest.raises(FsError, match="ENOTEMPTY"):
            yield from gfs.rmdir("fs::/t/d")
        yield from gfs.unlink("fs::/t/d/f")
        yield from gfs.rmdir("fs::/t/d")
        names = yield from gfs.readdir("fs::/t")
        return names

    assert "d" not in run(sys_, proc())


def test_readdir_of_file_is_enotdir():
    sys_, gfs = make()

    def proc():
        yield from gfs.write_file("fs::/t/plain", b"x")
        with pytest.raises(FsError, match="ENOTDIR"):
            yield from gfs.readdir("fs::/t/plain")
        return True

    assert run(sys_, proc())


def test_unlink_directory_is_eisdir():
    sys_, gfs = make()

    def proc():
        yield from gfs.mkdir("fs::/t/dir")
        with pytest.raises(FsError, match="EISDIR"):
            yield from gfs.unlink("fs::/t/dir")
        return True

    assert run(sys_, proc())


def test_rename_across_directories_updates_listings():
    sys_, gfs = make()

    def proc():
        yield from gfs.write_file("fs::/t/src/f", b"payload")
        yield from gfs.mkdir("fs::/t/dst")
        yield from gfs.rename("fs::/t/src/f", "fs::/t/dst/g")
        src = yield from gfs.readdir("fs::/t/src")
        dst = yield from gfs.readdir("fs::/t/dst")
        data = yield from gfs.read_file("fs::/t/dst/g")
        return src, dst, data

    src, dst, data = run(sys_, proc())
    assert src == [] and dst == ["g"]
    assert data == b"payload"


def test_state_repair_rebuilds_directory_tree():
    sys_, gfs = make()
    labfs = labfs_of(sys_)

    def proc():
        yield from gfs.write_file("fs::/t/a/b/one", b"1")
        yield from gfs.write_file("fs::/t/a/two", b"2")
        labfs.inodes = {}
        labfs.by_path = {}
        labfs.state_repair()
        listing = yield from gfs.readdir("fs::/t/a")
        data = yield from gfs.read_file("fs::/t/a/b/one")
        return listing, data

    listing, data = run(sys_, proc())
    assert listing == ["b", "two"]
    assert data == b"1"


# --- prefetcher --------------------------------------------------------------
def _mount_with_prefetch(sys_):
    spec = sys_.stack("fs::/p").fs(variant="min").build()
    fs_node = next(n for n in spec.nodes if n.uuid.endswith("labfs"))
    node = NodeSpec(mod_name="PrefetchMod", uuid="pf0", attrs={"window": 64 * KiB})
    node.outputs = list(fs_node.outputs)
    fs_node.outputs = ["pf0"]
    spec.nodes.insert(spec.nodes.index(fs_node) + 1, node)
    return sys_.runtime.mount_stack(spec)


def test_prefetcher_detects_sequential_stream():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_prefetch(sys_)
    gfs = GenericFS(sys_.client())

    def proc():
        yield from gfs.write_file("fs::/p/big", b"s" * (512 * KiB))
        lru = sys_.runtime.registry.get(
            next(u for u in sys_.runtime.registry.uuids() if u.endswith("lru")))
        lru.pages.clear()
        fd = yield from gfs.open("fs::/p/big")
        for i in range(16):
            yield from gfs.read(fd, 16 * KiB, offset=i * 16 * KiB)
        yield sys_.env.timeout(1_000_000)  # let background prefetches land

    run(sys_, proc())
    pf = sys_.runtime.registry.get("pf0")
    assert pf.prefetches >= 1


def test_prefetcher_speeds_up_sequential_cold_reads():
    def seq_read_time(prefetch: bool):
        sys_ = LabStorSystem(devices=("nvme",))
        if prefetch:
            _mount_with_prefetch(sys_)
        else:
            sys_.mount_fs_stack("fs::/p", variant="min")
        gfs = GenericFS(sys_.client())

        def proc():
            yield from gfs.write_file("fs::/p/big", b"s" * (512 * KiB))
            lru = sys_.runtime.registry.get(
                next(u for u in sys_.runtime.registry.uuids() if u.endswith("lru")))
            lru.pages.clear()
            fd = yield from gfs.open("fs::/p/big")
            start = sys_.env.now
            for i in range(32):
                yield from gfs.read(fd, 16 * KiB, offset=i * 16 * KiB)
            return sys_.env.now - start

        return sys_.run(sys_.process(proc()))

    assert seq_read_time(True) < seq_read_time(False)


def test_prefetcher_ignores_random_reads():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_prefetch(sys_)
    gfs = GenericFS(sys_.client())

    def proc():
        yield from gfs.write_file("fs::/p/r", b"r" * (256 * KiB))
        fd = yield from gfs.open("fs::/p/r")
        for off in (0, 128 * KiB, 32 * KiB, 192 * KiB, 64 * KiB):
            yield from gfs.read(fd, 4 * KiB, offset=off)

    run(sys_, proc())
    assert sys_.runtime.registry.get("pf0").prefetches == 0
