"""Unit tests for repro.sim.resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, FilterStore, PriorityResource, Resource, Store


def test_resource_mutual_exclusion():
    env = Environment()
    lock = Resource(env, capacity=1)
    log = []

    def proc(name, hold):
        with lock.request() as req:
            yield req
            log.append((env.now, name, "acq"))
            yield env.timeout(hold)
        log.append((env.now, name, "rel"))

    env.process(proc("a", 10))
    env.process(proc("b", 5))
    env.run()
    assert log == [(0, "a", "acq"), (10, "a", "rel"), (10, "b", "acq"), (15, "b", "rel")]


def test_resource_capacity_n_parallel_grants():
    env = Environment()
    pool = Resource(env, capacity=3)
    acquired_at = []

    def proc():
        with pool.request() as req:
            yield req
            acquired_at.append(env.now)
            yield env.timeout(100)

    for _ in range(6):
        env.process(proc())
    env.run()
    assert acquired_at == [0, 0, 0, 100, 100, 100]


def test_resource_fifo_order():
    env = Environment()
    lock = Resource(env, capacity=1)
    order = []

    def proc(name, start):
        yield env.timeout(start)
        with lock.request() as req:
            yield req
            order.append(name)
            yield env.timeout(10)

    env.process(proc("first", 1))
    env.process(proc("second", 2))
    env.process(proc("third", 3))
    env.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_orders_by_priority():
    env = Environment()
    lock = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with lock.request() as req:
            yield req
            yield env.timeout(10)

    def proc(name, prio):
        yield env.timeout(1)
        with lock.request(priority=prio) as req:
            yield req
            order.append(name)

    env.process(holder())
    env.process(proc("low", 5))
    env.process(proc("high", 0))
    env.run()
    assert order == ["high", "low"]


def test_resource_busy_time_accounting():
    env = Environment()
    lock = Resource(env, capacity=2)

    def proc(hold):
        with lock.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(proc(100))
    env.process(proc(40))
    env.run()
    assert lock.busy_time() == 140


def test_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield env.timeout(10)
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(10, 0), (20, 1), (30, 2)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    result = []

    def consumer():
        item = yield store.get()
        result.append((env.now, item))

    def producer():
        yield env.timeout(77)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert result == [(77, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(env.now)
        yield store.put("b")  # blocks until 'a' is consumed
        times.append(env.now)

    def consumer():
        yield env.timeout(50)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [0, 50]


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("item")
    env.run()
    assert store.try_get() == "item"
    assert store.try_get() is None


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer():
        yield env.timeout(1)
        yield store.put(1)
        yield env.timeout(1)
        yield store.put(4)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [4]
    assert list(store.items) == [1]


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, init=0)
    done = []

    def consumer():
        yield tank.get(10)
        done.append(env.now)

    def producer():
        yield env.timeout(5)
        tank.put(4)
        yield env.timeout(5)
        tank.put(6)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert done == [10]
    assert tank.level == 0


def test_container_capacity_clamps():
    env = Environment()
    tank = Container(env, init=0, capacity=10)
    tank.put(100)
    assert tank.level == 10
