"""Unit + property tests for repro.devices."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    BackingStore,
    BlockRequest,
    DeviceProfile,
    IoOp,
    make_device,
)
from repro.errors import DeviceError
from repro.sim import Environment
from repro.units import KiB, MiB, usec


# --- BackingStore -----------------------------------------------------------
def test_backing_unwritten_reads_zero():
    bs = BackingStore(1 * MiB)
    assert bs.read(1000, 64) == b"\x00" * 64


def test_backing_write_read_roundtrip():
    bs = BackingStore(1 * MiB)
    bs.write(12345, b"hello world")
    assert bs.read(12345, 11) == b"hello world"


def test_backing_cross_page_write():
    bs = BackingStore(1 * MiB)
    data = bytes(range(256)) * 40  # 10240 bytes spanning 3+ pages
    bs.write(4000, data)
    assert bs.read(4000, len(data)) == data


def test_backing_out_of_range_rejected():
    bs = BackingStore(4096)
    with pytest.raises(DeviceError):
        bs.write(4090, b"too long!")
    with pytest.raises(DeviceError):
        bs.read(-1, 4)


def test_backing_discard_zeroes_range():
    bs = BackingStore(1 * MiB)
    bs.write(0, b"\xff" * 16384)
    bs.discard(4096, 8192)
    assert bs.read(0, 4096) == b"\xff" * 4096
    assert bs.read(4096, 8192) == b"\x00" * 8192
    assert bs.read(12288, 4096) == b"\xff" * 4096


def test_backing_discard_partial_pages():
    bs = BackingStore(1 * MiB)
    bs.write(0, b"\xaa" * 12288)
    bs.discard(100, 200)
    assert bs.read(0, 100) == b"\xaa" * 100
    assert bs.read(100, 200) == b"\x00" * 200
    assert bs.read(300, 100) == b"\xaa" * 100


def test_backing_sparse_occupancy():
    bs = BackingStore(1024 * MiB)
    assert bs.resident_bytes == 0
    bs.write(512 * MiB, b"x")
    assert bs.resident_bytes == 4096


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 60_000), st.binary(min_size=1, max_size=9000)),
        min_size=1,
        max_size=12,
    )
)
def test_backing_matches_flat_buffer_model(writes):
    """Property: BackingStore behaves exactly like one big bytearray."""
    cap = 70_000
    bs = BackingStore(cap)
    model = bytearray(cap)
    for offset, data in writes:
        if offset + len(data) > cap:
            continue
        bs.write(offset, data)
        model[offset : offset + len(data)] = data
    assert bs.read(0, cap) == bytes(model)


# --- BlockDevice service model ----------------------------------------------
def _write_req(offset, size, hctx=0):
    return BlockRequest(op=IoOp.WRITE, offset=offset, size=size, data=b"w" * size, hctx=hctx)


def test_write_requires_data():
    with pytest.raises(DeviceError):
        BlockRequest(op=IoOp.WRITE, offset=0, size=8)


def test_write_size_mismatch_rejected():
    with pytest.raises(DeviceError):
        BlockRequest(op=IoOp.WRITE, offset=0, size=8, data=b"xy")


def test_nvme_write_then_read_roundtrip():
    env = Environment()
    dev = make_device(env, "nvme")
    payload = b"labstor!" * 512  # 4 KiB

    def proc():
        w = BlockRequest(op=IoOp.WRITE, offset=8192, size=4096, data=payload)
        yield dev.submit(w)
        r = BlockRequest(op=IoOp.READ, offset=8192, size=4096)
        yield dev.submit(r)
        return r.result

    assert env.run(env.process(proc())) == payload


def test_nvme_4k_write_latency_matches_profile():
    env = Environment()
    dev = make_device(env, "nvme")
    expected = dev.profile.service_ns(IoOp.WRITE, 4096)

    def proc():
        req = _write_req(0, 4096)
        yield dev.submit(req)
        return req.latency_ns

    assert env.run(env.process(proc())) == expected
    # ~14us fixed + 4KiB/2GBps ~= 2us transfer
    assert usec(15) < expected < usec(18)


def test_nvme_parallel_queues_do_not_block_each_other():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=2, parallelism=2)
    lat = {}

    def proc(hctx, n):
        for i in range(n):
            req = _write_req(i * 4096, 4096, hctx=hctx)
            yield dev.submit(req)
        lat[hctx] = env.now

    env.process(proc(0, 4))
    env.process(proc(1, 4))
    env.run()
    # Both streams finish at the same time: no cross-queue interference.
    assert lat[0] == lat[1]


def test_single_hctx_head_of_line_blocking():
    """A small request behind a deep backlog on the same hctx waits far
    longer than on an idle hctx (the Fig 8 effect): per-hctx dispatch is
    FIFO and the backlog holds the scarce device channels."""
    env = Environment()
    dev = make_device(env, "nvme", nqueues=2, parallelism=2)
    done = {}

    def big_burst(hctx):
        reqs = [_write_req(i * MiB, 1 * MiB, hctx=hctx) for i in range(8)]
        events = [dev.submit(r) for r in reqs]
        yield env.all_of(events)

    def small(name, hctx):
        yield env.timeout(1)  # arrive just after the burst queued
        req = _write_req(64 * MiB, 4 * KiB, hctx=hctx)
        yield dev.submit(req)
        done[name] = req.latency_ns

    env.process(big_burst(0))
    env.process(small("same_queue", 0))
    env.process(small("other_queue", 1))
    env.run()
    assert done["same_queue"] > done["other_queue"] * 3


def test_hdd_sequential_much_faster_than_random():
    env = Environment()
    dev = make_device(env, "hdd")
    totals = {}

    def seq():
        for i in range(16):
            req = _write_req(i * 64 * KiB, 64 * KiB)
            yield dev.submit(req)
        totals["seq"] = env.now

    env.process(seq())
    env.run()

    env2 = Environment()
    dev2 = make_device(env2, "hdd")

    def rand():
        # full-stroke seek on every request
        cap = dev2.profile.capacity_bytes
        for i in range(16):
            offset = 0 if i % 2 else cap - 64 * KiB
            req = _write_req(offset, 64 * KiB)
            yield dev2.submit(req)
        totals["rand"] = env2.now

    env2.process(rand())
    env2.run()
    assert totals["rand"] > totals["seq"] * 3


def test_hdd_profile_constraints():
    env = Environment()
    with pytest.raises(DeviceError):
        make_device(env, "hdd", nqueues=4)


def test_pmem_dax_roundtrip():
    env = Environment()
    dev = make_device(env, "pmem")

    def proc():
        yield env.process(dev.dax_store(4096, b"persist me"))
        data = yield env.process(dev.dax_load(4096, 10))
        return data

    assert env.run(env.process(proc())) == b"persist me"


def test_pmem_much_faster_than_nvme():
    env = Environment()
    pmem = make_device(env, "pmem")
    nvme = make_device(env, "nvme")
    assert pmem.profile.service_ns(IoOp.WRITE, 4096) * 10 < nvme.profile.service_ns(
        IoOp.WRITE, 4096
    )


def test_nvme_poll_completions_drains_ring():
    env = Environment()
    dev = make_device(env, "nvme")

    def proc():
        req = _write_req(0, 4096, hctx=3)
        dev.submit(req)
        yield dev.cq_event(3)
        return dev.poll_completions(3)

    drained = env.run(env.process(proc()))
    assert len(drained) == 1
    assert drained[0].op is IoOp.WRITE
    assert dev.poll_completions(3) == []


def test_trim_zeroes_data():
    env = Environment()
    dev = make_device(env, "nvme")

    def proc():
        yield dev.submit(_write_req(0, 4096))
        yield dev.submit(BlockRequest(op=IoOp.TRIM, offset=0, size=4096))
        r = BlockRequest(op=IoOp.READ, offset=0, size=4096)
        yield dev.submit(r)
        return r.result

    assert env.run(env.process(proc())) == b"\x00" * 4096


def test_device_accounting_counters():
    env = Environment()
    dev = make_device(env, "ssd")

    def proc():
        yield dev.submit(_write_req(0, 8192))
        r = BlockRequest(op=IoOp.READ, offset=0, size=4096)
        yield dev.submit(r)

    env.run(env.process(proc()))
    assert dev.bytes_written == 8192
    assert dev.bytes_read == 4096
    assert dev.completed == 2


def test_bad_hctx_rejected():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=2)
    with pytest.raises(DeviceError):
        dev.submit(_write_req(0, 4096, hctx=5))


def test_unknown_device_kind():
    env = Environment()
    with pytest.raises(ValueError, match="unknown device kind"):
        make_device(env, "optane-tape")


def test_profile_jitter_is_reproducible():
    import numpy as np

    prof = DeviceProfile(name="j", capacity_bytes=MiB, jitter=0.2, write_lat_ns=1000, write_bw=1e9)
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    a = [prof.service_ns(IoOp.WRITE, 4096, rng=rng_a) for _ in range(5)]
    b = [prof.service_ns(IoOp.WRITE, 4096, rng=rng_b) for _ in range(5)]
    assert a == b
    assert len(set(a)) > 1
