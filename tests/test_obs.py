"""Tests for repro.obs: span lifecycle, phase-sum invariant, metrics."""

import pytest

from repro.core.runtime import RuntimeConfig
from repro.devices.profiles import make_device
from repro.kernel import make_filesystem
from repro.mods.generic_fs import GenericFS
from repro.obs import PHASES, MetricsRegistry, SpanContext, Telemetry, phase_breakdown
from repro.sim import Environment
from repro.system import LabStorSystem


def _lab_system(variant, telemetry):
    sys_ = LabStorSystem(
        devices=("nvme",), config=RuntimeConfig(nworkers=1), telemetry=telemetry
    )
    sys_.stack("fs::/t").fs(variant=variant).device("nvme").uuid_prefix("obs").mount()
    return sys_


def _run_io(sys_, nops=6, bs=4096):
    gfs = GenericFS(sys_.client())

    def scenario():
        fd = yield from gfs.open("fs::/t/f", create=True)
        for i in range(nops):
            yield from gfs.write(fd, b"w" * bs, offset=i * bs)
        for i in range(nops):
            yield from gfs.read(fd, bs, offset=i * bs)
        yield from gfs.close(fd)

    sys_.run(sys_.process(scenario()))


# ---------------------------------------------------------------------------
# span lifecycle + the exact phase-sum invariant
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["all", "min", "d"])
def test_every_span_closes_and_phases_sum_exactly(variant):
    telemetry = Telemetry()
    sys_ = _lab_system(variant, telemetry)
    _run_io(sys_)
    assert telemetry.opened_total > 0
    assert telemetry.opened_total == telemetry.closed_total
    assert telemetry.open_spans() == []
    for span in telemetry.spans:
        assert span.closed
        # the ISSUE's acceptance bound is 1 ns; the implementation is exact
        assert abs(sum(span.phases().values()) - span.e2e_ns) <= 1
        assert all(v >= 0 for v in span.phases().values())
        assert span.sync == (variant == "d")
    sys_.shutdown()


def test_kernel_fs_spans_close_and_sum():
    env = Environment()
    telemetry = Telemetry().install(env)
    fs = make_filesystem("ext4", env, make_device(env, "nvme"))

    def scenario():
        fd = yield env.process(fs.open("/f", create=True))
        yield env.process(fs.write(fd, b"x" * 8192, offset=0))
        yield env.process(fs.fsync(fd))
        ino = fs._fds[fd].inode.ino
        fs.cache.invalidate(ino)
        yield env.process(fs.read(fd, 8192, offset=0))

    env.run(env.process(scenario()))
    assert telemetry.open_spans() == []
    kinds = {s.kind for s in telemetry.spans}
    assert kinds == {"kernel"}
    devices = 0
    for span in telemetry.spans:
        assert abs(sum(span.phases().values()) - span.e2e_ns) <= 1
        devices += span.phases()["device"]
    # the fsync + uncached read must have billed real device time
    assert devices > 0


def test_phase_breakdown_aggregate_preserves_sum():
    telemetry = Telemetry()
    sys_ = _lab_system("all", telemetry)
    _run_io(sys_)
    bd = phase_breakdown(telemetry.spans)
    assert bd["count"] == len(telemetry.spans) > 0
    phase_sum = sum(bd["phases"][p]["total_ns"] for p in PHASES)
    assert phase_sum == bd["e2e"]["total_ns"]
    assert bd["mods"], "per-LabMod frames should be recorded"
    sys_.shutdown()


def test_device_windows_overlap_merged():
    sc = SpanContext(op="x", now=0)
    sc.mark_dispatched(0)
    sc.add_device_window(10, 50)
    sc.add_device_window(30, 70)   # overlaps the first
    sc.add_device_window(90, 100)  # disjoint
    sc.mark_complete(200)
    sc.close(200)
    assert sc.device_ns == (70 - 10) + (100 - 90)


def test_late_records_after_close_are_ignored():
    sc = SpanContext(op="x", now=0)
    sc.mark_dispatched(0)
    sc.mark_complete(100)
    sc.close(100)
    sc.add_cat("cache", 50)
    sc.add_device_window(0, 60)
    sc.add_kqueue(10)
    assert sc.cats == {}
    assert sc.device_ns == 0
    assert sc.kqueue_ns == 0


# ---------------------------------------------------------------------------
# disabled path: no allocations, no spans
# ---------------------------------------------------------------------------
def test_disabled_telemetry_allocates_no_spans():
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=1))
    sys_.stack("fs::/t").fs(variant="all").uuid_prefix("obs").mount()
    client = sys_.client()
    gfs = GenericFS(client)

    captured = []

    def scenario():
        fd = yield from gfs.open("fs::/t/f", create=True)
        yield from gfs.write(fd, b"w" * 4096, offset=0)
        return fd

    sys_.run(sys_.process(scenario()))
    assert sys_.telemetry is None
    assert not sys_.env.tracer.obs
    assert not captured
    sys_.shutdown()


def test_env_var_arms_telemetry(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    sys_ = LabStorSystem(devices=("nvme",))
    assert sys_.telemetry is not None
    assert sys_.env.tracer.obs
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    sys2 = LabStorSystem(devices=("nvme",))
    assert sys2.telemetry is None


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
def test_metrics_registry_counters_and_histograms():
    reg = MetricsRegistry()
    reg.inc("reqs", op="write")
    reg.inc("reqs", 2, op="write")
    reg.inc("reqs", op="read")
    reg.set_gauge("open", 3)
    for v in (100, 200, 300):
        reg.observe("lat_ns", v, op="write")
    assert reg.counter("reqs", op="write") == 3
    assert reg.counter("reqs", op="read") == 1
    assert reg.gauge("open") == 3
    h = reg.histogram("lat_ns", op="write")
    assert h.total == 3
    snap = reg.snapshot()
    assert any(c["name"] == "reqs" for c in snap["counters"])
    assert any(hh["count"] == 3 for hh in snap["histograms"])
    reg.reset()
    assert reg.counter("reqs", op="write") == 0


def test_telemetry_registry_populated_by_requests():
    telemetry = Telemetry()
    sys_ = _lab_system("all", telemetry)
    _run_io(sys_, nops=3)
    reg = telemetry.registry
    assert reg.counter("requests_total", kind="lab", op="fs.write") == 3
    assert reg.histogram("e2e_ns", kind="lab").total == telemetry.closed_total
    assert reg.counter("device_ops_total", device="nvme", op="write") > 0
    sys_.shutdown()

def test_snapshot_survives_heterogeneous_label_types():
    """Regression (ISSUE 6): snapshot() sorted keys with plain sorted(),
    which raised TypeError the moment one metric name carried labels of
    mixed value types (device=0 from an indexed loop next to
    device="nvme" from a named one)."""
    reg = MetricsRegistry()
    reg.inc("ops", device=0)
    reg.inc("ops", device="nvme")
    reg.set_gauge("depth", 2, queue=1)
    reg.set_gauge("depth", 4, queue="admin")
    reg.observe("lat_ns", 100, shard=3)
    reg.observe("lat_ns", 200, shard="hot")
    snap = reg.snapshot()  # used to raise TypeError: '<' not supported
    devices = [c["labels"]["device"] for c in snap["counters"] if c["name"] == "ops"]
    assert sorted(devices, key=str) == [0, "nvme"]
    assert len([g for g in snap["gauges"] if g["name"] == "depth"]) == 2
    assert len([h for h in snap["histograms"] if h["name"] == "lat_ns"]) == 2


def test_snapshot_order_is_stable_and_type_aware():
    reg = MetricsRegistry()
    for dev in ("b", 1, "a", 0):
        reg.inc("ops", device=dev)
    first = [c["labels"]["device"] for c in reg.snapshot()["counters"]]
    second = [c["labels"]["device"] for c in reg.snapshot()["counters"]]
    assert first == second  # deterministic export order
    assert set(map(str, first)) == {"0", "1", "a", "b"}


def test_histogram_snapshot_reports_p999():
    reg = MetricsRegistry()
    for v in range(1, 1001):
        reg.observe("lat_ns", v * 1000)
    entry = next(h for h in reg.snapshot()["histograms"] if h["name"] == "lat_ns")
    assert entry["p999_ns"] >= entry["p99_ns"] >= entry["p50_ns"]
