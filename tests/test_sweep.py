"""Tests for the parallel sweep runner (repro.experiments.sweep)."""

import pytest

from repro.experiments.sweep import point_seed, run_sweep


def _toy_point(point, seed):
    """A tiny self-contained DES run (module-level: crosses the pool)."""
    from repro.sim import Environment

    env = Environment()

    def proc():
        acc = seed & 0xFFFF
        for _ in range(point["n"]):
            yield env.timeout((acc % 7) + 1)
            acc = (acc * 1103515245 + 12345) % (2**31)
        return acc

    acc = env.run(env.process(proc()))
    return {"n": point["n"], "acc": acc, "virtual_ns": env.now, "seed": seed}


def _boom(point, seed):
    raise ValueError(f"boom at {point}")


POINTS = [{"n": n} for n in (5, 17, 3, 29, 11)]


def test_point_seed_deterministic_and_distinct():
    seeds = [point_seed(0, i) for i in range(64)]
    assert seeds == [point_seed(0, i) for i in range(64)]
    assert len(set(seeds)) == 64
    # distinct base seeds must not alias shifted index ranges
    assert point_seed(7, 0) != point_seed(0, 7)
    assert all(0 <= s < 2**63 for s in seeds)


def test_serial_results_in_point_order():
    rows = run_sweep(_toy_point, POINTS, base_seed=3, processes=1)
    assert [r["n"] for r in rows] == [p["n"] for p in POINTS]
    assert [r["seed"] for r in rows] == [point_seed(3, i) for i in range(len(POINTS))]


def test_parallel_matches_serial_exactly():
    serial = run_sweep(_toy_point, POINTS, base_seed=3, processes=1)
    parallel = run_sweep(_toy_point, POINTS, base_seed=3, processes=2)
    assert parallel == serial


def test_seeds_independent_of_process_count():
    two = run_sweep(_toy_point, POINTS, base_seed=9, processes=2)
    three = run_sweep(_toy_point, POINTS, base_seed=9, processes=3)
    assert two == three


def test_single_point_short_circuits_serial():
    rows = run_sweep(_toy_point, [{"n": 4}], base_seed=1, processes=8)
    assert len(rows) == 1 and rows[0]["seed"] == point_seed(1, 0)


def test_empty_sweep():
    assert run_sweep(_toy_point, [], base_seed=0) == []


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        run_sweep(_boom, [{"n": 1}, {"n": 2}], processes=2)
    with pytest.raises(ValueError, match="boom"):
        run_sweep(_boom, [{"n": 1}], processes=1)


def test_base_seed_changes_results():
    a = run_sweep(_toy_point, POINTS, base_seed=0, processes=1)
    b = run_sweep(_toy_point, POINTS, base_seed=1, processes=1)
    assert [r["acc"] for r in a] != [r["acc"] for r in b]
