"""Tests for the parallel sweep runner (repro.experiments.sweep)."""

import pytest

from repro.experiments.sweep import point_seed, run_sweep


def _toy_point(point, seed):
    """A tiny self-contained DES run (module-level: crosses the pool)."""
    from repro.sim import Environment

    env = Environment()

    def proc():
        acc = seed & 0xFFFF
        for _ in range(point["n"]):
            yield env.timeout((acc % 7) + 1)
            acc = (acc * 1103515245 + 12345) % (2**31)
        return acc

    acc = env.run(env.process(proc()))
    return {"n": point["n"], "acc": acc, "virtual_ns": env.now, "seed": seed}


def _boom(point, seed):
    raise ValueError(f"boom at {point}")


POINTS = [{"n": n} for n in (5, 17, 3, 29, 11)]


def test_point_seed_deterministic_and_distinct():
    seeds = [point_seed(0, i) for i in range(64)]
    assert seeds == [point_seed(0, i) for i in range(64)]
    assert len(set(seeds)) == 64
    # distinct base seeds must not alias shifted index ranges
    assert point_seed(7, 0) != point_seed(0, 7)
    assert all(0 <= s < 2**63 for s in seeds)


def test_serial_results_in_point_order():
    rows = run_sweep(_toy_point, POINTS, base_seed=3, processes=1)
    assert [r["n"] for r in rows] == [p["n"] for p in POINTS]
    assert [r["seed"] for r in rows] == [point_seed(3, i) for i in range(len(POINTS))]


def test_parallel_matches_serial_exactly():
    serial = run_sweep(_toy_point, POINTS, base_seed=3, processes=1)
    parallel = run_sweep(_toy_point, POINTS, base_seed=3, processes=2)
    assert parallel == serial


def test_seeds_independent_of_process_count():
    two = run_sweep(_toy_point, POINTS, base_seed=9, processes=2)
    three = run_sweep(_toy_point, POINTS, base_seed=9, processes=3)
    assert two == three


def test_single_point_short_circuits_serial():
    rows = run_sweep(_toy_point, [{"n": 4}], base_seed=1, processes=8)
    assert len(rows) == 1 and rows[0]["seed"] == point_seed(1, 0)


def test_empty_sweep():
    assert run_sweep(_toy_point, [], base_seed=0) == []


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        run_sweep(_boom, [{"n": 1}, {"n": 2}], processes=2)
    with pytest.raises(ValueError, match="boom"):
        run_sweep(_boom, [{"n": 1}], processes=1)


def test_base_seed_changes_results():
    a = run_sweep(_toy_point, POINTS, base_seed=0, processes=1)
    b = run_sweep(_toy_point, POINTS, base_seed=1, processes=1)
    assert [r["acc"] for r in a] != [r["acc"] for r in b]


# ----------------------------------------------------------------------
# warm starts (repro.snap snapshot shared across the pool)
# ----------------------------------------------------------------------
WARM_KEYS = 48


def _warm_system():
    """The sweep's fixed topology: one KVS stack + a GenericKVS surface."""
    from repro.mods.generic_kvs import GenericKVS
    from repro.sim.check import reset_global_counters
    from repro.system import LabStorSystem

    reset_global_counters()
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/warm", variant="min", uuid_prefix="warm")
    kvs = GenericKVS(sys_.client(), "kvs::/warm")
    return sys_, kvs


def _warmup(sys_, kvs):
    """The expensive shared prefix every point would otherwise repeat."""
    def fill():
        for i in range(WARM_KEYS):
            yield from kvs.put(f"w{i}", bytes([(i * 7 + 1) % 251]) * 2048)

    sys_.run(sys_.process(fill()))


def _measure(sys_, kvs, point, seed):
    """The per-point phase; results use only deltas and digests so they
    cannot smell whether the warmup was run or restored."""
    import hashlib

    import numpy as np

    rng = np.random.default_rng(seed)
    start = sys_.env.now

    def work():
        acc = hashlib.sha256()
        for _ in range(point["nops"]):
            key = f"w{int(rng.integers(0, WARM_KEYS))}"
            value = yield from kvs.get(key)
            acc.update(value)
        return acc.hexdigest()

    digest = sys_.run(sys_.process(work()))
    return {"nops": point["nops"], "digest": digest,
            "elapsed_ns": sys_.env.now - start, "seed": seed}


def make_warm_snapshot():
    """Run the warmup once and capture its quiescent state."""
    from repro.snap import SystemSnapshot

    sys_, kvs = _warm_system()
    _warmup(sys_, kvs)
    snap = SystemSnapshot.capture(sys_, tag="sweep-warm", drain=True)
    sys_.shutdown()
    return snap


def _cold_point(point, seed):
    sys_, kvs = _warm_system()
    _warmup(sys_, kvs)
    res = _measure(sys_, kvs, point, seed)
    res["events"] = sys_.env._eid
    sys_.shutdown()
    return res


def _warm_point(point, seed, snapshot):
    sys_, kvs = _warm_system()
    snapshot.restore_into(sys_)
    res = _measure(sys_, kvs, point, seed)
    res["events"] = sys_.env._eid
    sys_.shutdown()
    return res


WARM_POINTS = [{"nops": n} for n in (6, 14, 9, 21)]


def test_warm_sweep_merges_byte_identical_to_cold_serial():
    """S5 acceptance: restoring the shared snapshot in parallel workers
    reproduces the cold serial sweep exactly — minus the warmup work."""
    snap = make_warm_snapshot()
    cold = run_sweep(_cold_point, WARM_POINTS, base_seed=5, processes=1)
    warm = run_sweep(_warm_point, WARM_POINTS, base_seed=5, processes=2,
                     warm_start=snap)
    # every point skipped the warmup's simulation events...
    for c, w in zip(cold, warm):
        assert w.pop("events") < c.pop("events")
    # ...yet measured byte-identical results
    assert warm == cold


def test_warm_start_serial_path_also_binds_snapshot():
    snap = make_warm_snapshot()
    one = run_sweep(_warm_point, WARM_POINTS[:1], base_seed=5, processes=1,
                    warm_start=snap)
    cold = run_sweep(_cold_point, WARM_POINTS[:1], base_seed=5, processes=1)
    one[0].pop("events"), cold[0].pop("events")
    assert one == cold
