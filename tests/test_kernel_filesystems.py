"""Tests for the kernel filesystem baselines (ext4/xfs/f2fs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import make_device
from repro.errors import FsError
from repro.kernel import Ext4Sim, F2fsSim, XfsSim, make_filesystem
from repro.sim import Environment
from repro.units import KiB, MiB


def make_fs(name="ext4", cache_pages=1024):
    env = Environment()
    dev = make_device(env, "nvme")
    fs = make_filesystem(name, env, dev, cache_pages=cache_pages)
    return env, fs


def run(env, gen):
    return env.run(env.process(gen))


@pytest.mark.parametrize("name", ["ext4", "xfs", "f2fs"])
def test_write_read_roundtrip(name):
    env, fs = make_fs(name)
    payload = b"the quick brown fox" * 100

    def proc():
        yield env.process(fs.write_file("/data/file.bin", payload))
        data = yield env.process(fs.read_file("/data/file.bin"))
        return data

    assert run(env, proc()) == payload


def test_unknown_fs_name():
    env = Environment()
    dev = make_device(env, "nvme")
    with pytest.raises(ValueError, match="unknown filesystem"):
        make_filesystem("btrfs", env, dev)


def test_open_missing_raises_enoent():
    env, fs = make_fs()

    def proc():
        with pytest.raises(FsError, match="ENOENT"):
            yield env.process(fs.open("/nope"))
        return True

    assert run(env, proc())


def test_create_existing_raises_eexist():
    env, fs = make_fs()

    def proc():
        fd = yield env.process(fs.create("/a"))
        yield env.process(fs.close(fd))
        with pytest.raises(FsError, match="EEXIST"):
            yield env.process(fs.create("/a"))
        return True

    assert run(env, proc())


def test_read_past_eof_short_read():
    env, fs = make_fs()

    def proc():
        fd = yield env.process(fs.create("/f"))
        yield env.process(fs.write(fd, b"12345", offset=0))
        data = yield env.process(fs.read(fd, 100, offset=0))
        empty = yield env.process(fs.read(fd, 10, offset=50))
        return data, empty

    data, empty = run(env, proc())
    assert data == b"12345"
    assert empty == b""


def test_sequential_write_read_uses_file_position():
    env, fs = make_fs()

    def proc():
        fd = yield env.process(fs.create("/seq"))
        yield env.process(fs.write(fd, b"aaa"))
        yield env.process(fs.write(fd, b"bbb"))
        yield env.process(fs.seek(fd, 0))
        data = yield env.process(fs.read(fd, 6))
        return data

    assert run(env, proc()) == b"aaabbb"


def test_unlink_removes_and_frees_blocks():
    env, fs = make_fs()

    def proc():
        yield env.process(fs.write_file("/gone", b"z" * 8192))
        yield env.process(fs.unlink("/gone"))
        assert not fs.exists("/gone")
        with pytest.raises(FsError, match="ENOENT"):
            yield env.process(fs.unlink("/gone"))
        return True

    assert run(env, proc())


def test_rename_preserves_data():
    env, fs = make_fs()

    def proc():
        yield env.process(fs.write_file("/old", b"payload"))
        yield env.process(fs.rename("/old", "/new"))
        data = yield env.process(fs.read_file("/new"))
        assert not fs.exists("/old")
        return data

    assert run(env, proc()) == b"payload"


def test_stat_reports_size():
    env, fs = make_fs()

    def proc():
        yield env.process(fs.write_file("/s", b"x" * 1234))
        st_ = yield env.process(fs.stat("/s"))
        return st_

    st_ = run(env, proc())
    assert st_["size"] == 1234


def test_fsync_persists_to_device():
    """After fsync, data is on the device even if the cache is invalidated."""
    env, fs = make_fs()

    def proc():
        fd = yield env.process(fs.open("/durable", create=True))
        yield env.process(fs.write(fd, b"D" * 4096, offset=0))
        yield env.process(fs.fsync(fd))
        # simulate cache loss
        fs.cache.invalidate(fs._fds[fd].inode.ino)
        data = yield env.process(fs.read(fd, 4096, offset=0))
        return data

    assert run(env, proc()) == b"D" * 4096


def test_bad_fd_rejected():
    env, fs = make_fs()

    def proc():
        with pytest.raises(FsError, match="EBADF"):
            yield env.process(fs.write(999, b"x"))
        return True

    assert run(env, proc())


def test_metadata_lock_serializes_creates_ext4():
    """Concurrent ext4 creates serialize on the journal: throughput flattens."""

    def creates_elapsed(nthreads, name):
        env, fs = make_fs(name)
        per_thread = 20

        def worker(tid):
            for i in range(per_thread):
                fd = yield env.process(fs.create(f"/t{tid}/f{i}"))
                yield env.process(fs.close(fd))

        for t in range(nthreads):
            env.process(worker(t))
        env.run()
        return env.now

    t1 = creates_elapsed(1, "ext4")
    t8 = creates_elapsed(8, "ext4")
    # 8x the work in well under 8x... no: serialized journal means the elapsed
    # time grows nearly linearly with total op count.
    assert t8 > 5 * t1


def test_xfs_shards_give_some_concurrency():
    def creates_elapsed(fs_name, nthreads):
        env, fs = make_fs(fs_name)

        def worker(tid):
            for i in range(20):
                fd = yield env.process(fs.create(f"/t{tid}/f{i}"))
                yield env.process(fs.close(fd))

        for t in range(nthreads):
            env.process(worker(t))
        env.run()
        total_ops = nthreads * 20
        return total_ops / (env.now / 1e9)

    # xfs at 8 threads should outscale ext4 at 8 threads (2 shards vs 1)
    assert creates_elapsed("xfs", 8) > creates_elapsed("ext4", 8) * 1.3


def test_large_file_spans_many_blocks_and_survives_cache_pressure():
    env, fs = make_fs(cache_pages=16)  # tiny cache forces eviction/writeback
    payload = bytes(range(256)) * 1024  # 256 KiB

    def proc():
        yield env.process(fs.write_file("/big", payload))
        data = yield env.process(fs.read_file("/big"))
        return data

    assert run(env, proc()) == payload


@settings(max_examples=20, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=10_000), min_size=1, max_size=6),
    fs_name=st.sampled_from(["ext4", "xfs", "f2fs"]),
)
def test_property_append_stream_roundtrip(chunks, fs_name):
    """Appending arbitrary chunks then reading the file returns their concat."""
    env, fs = make_fs(fs_name, cache_pages=32)

    def proc():
        fd = yield env.process(fs.create("/stream"))
        for c in chunks:
            yield env.process(fs.write(fd, c))
        yield env.process(fs.fsync(fd))
        yield env.process(fs.close(fd))
        data = yield env.process(fs.read_file("/stream"))
        return data

    assert run(env, proc()) == b"".join(chunks)
