"""Tests for the zoned-namespace device and its Driver LabMod."""

import pytest

from repro.core import LabRequest, StackSpec
from repro.core.labmod import ExecContext, ModContext
from repro.devices import BlockRequest, IoOp, ZoneState, make_device
from repro.errors import DeviceError, LabStorError
from repro.kernel import DEFAULT_COST
from repro.mods.zns_driver import ZnsDriverMod
from repro.sim import Environment, Tracer
from repro.system import LabStorSystem
from repro.units import MiB


def make_zns(env, **kw):
    return make_device(env, "zns", **kw)


def run1(env, gen):
    return env.run(env.process(gen))


# --- device semantics -------------------------------------------------------
def test_zone_append_assigns_sequential_offsets():
    env = Environment()
    dev = make_zns(env)

    def proc():
        o1 = yield env.process(dev.zone_append(0, b"a" * 4096))
        o2 = yield env.process(dev.zone_append(0, b"b" * 4096))
        return o1, o2

    o1, o2 = run1(env, proc())
    assert o1 == 0
    assert o2 == 4096
    assert dev.zones[0].state is ZoneState.OPEN
    assert dev.zones[0].wp == 8192


def test_append_data_readable():
    env = Environment()
    dev = make_zns(env)

    def proc():
        off = yield env.process(dev.zone_append(3, b"zoned data!" * 100))
        req = BlockRequest(op=IoOp.READ, offset=off, size=1100)
        yield dev.submit(req)
        return req.result

    assert run1(env, proc()) == b"zoned data!" * 100


def test_write_not_at_wp_rejected():
    env = Environment()
    dev = make_zns(env)
    with pytest.raises(DeviceError, match="write pointer"):
        dev.submit(BlockRequest(op=IoOp.WRITE, offset=8192, size=4096, data=b"x" * 4096))


def test_overwrite_below_wp_rejected():
    env = Environment()
    dev = make_zns(env)

    def proc():
        yield env.process(dev.zone_append(0, b"a" * 8192))
        with pytest.raises(DeviceError, match="overwrite below"):
            dev.submit(BlockRequest(op=IoOp.WRITE, offset=0, size=4096, data=b"y" * 4096))
        return True

    assert run1(env, proc())


def test_sequential_block_writes_at_wp_allowed():
    """A well-behaved log-structured stack can use plain writes at the wp."""
    env = Environment()
    dev = make_zns(env)

    def proc():
        for i in range(3):
            req = BlockRequest(op=IoOp.WRITE, offset=i * 4096, size=4096, data=b"s" * 4096)
            yield dev.submit(req)
        return dev.zones[0].wp

    assert run1(env, proc()) == 3 * 4096


def test_zone_fills_and_rejects_overflow():
    env = Environment()
    dev = make_zns(env, capacity_bytes=32 * MiB)  # 2 zones of 16MiB
    zone_size = dev.zone_size

    def proc():
        yield env.process(dev.zone_append(0, b"f" * zone_size))
        assert dev.zones[0].state is ZoneState.FULL
        with pytest.raises(DeviceError, match="FULL"):
            next(dev.zone_append(0, b"x"))
        return True

    assert run1(env, proc())


def test_zone_reset_rewinds_and_discards():
    env = Environment()
    dev = make_zns(env)

    def proc():
        off = yield env.process(dev.zone_append(1, b"d" * 4096))
        yield env.process(dev.zone_reset(1))
        assert dev.zones[1].state is ZoneState.EMPTY
        assert dev.zones[1].wp == dev.zones[1].start
        req = BlockRequest(op=IoOp.READ, offset=off, size=4096)
        yield dev.submit(req)
        return req.result

    assert run1(env, proc()) == b"\x00" * 4096  # data gone after reset


def test_capacity_must_align_to_zones():
    env = Environment()
    with pytest.raises(DeviceError, match="multiple of the zone size"):
        make_zns(env, capacity_bytes=10 * MiB)  # not a multiple of 16MiB


# --- driver LabMod --------------------------------------------------------
def _driver(env, dev):
    ctx = ModContext(env, DEFAULT_COST, Tracer(), {"zns": dev})
    return ZnsDriverMod("z0", ctx)


def test_zns_driver_append_and_read():
    env = Environment()
    dev = make_zns(env)
    drv = _driver(env, dev)
    x = ExecContext(env, Tracer())

    def proc():
        off = yield from drv.handle(
            LabRequest(op="blk.append", payload={"zone": 2, "data": b"log entry " * 50}), x
        )
        data = yield from drv.handle(
            LabRequest(op="blk.read", payload={"offset": off, "size": 500}), x
        )
        return off, data

    off, data = run1(env, proc())
    assert off == 2 * dev.zone_size
    assert data == b"log entry " * 50


def test_zns_driver_reset():
    env = Environment()
    dev = make_zns(env)
    drv = _driver(env, dev)
    x = ExecContext(env, Tracer())

    def proc():
        yield from drv.handle(
            LabRequest(op="blk.append", payload={"zone": 0, "data": b"x" * 4096}), x
        )
        yield from drv.handle(LabRequest(op="blk.reset_zone", payload={"zone": 0}), x)
        return dev.zones[0].state

    assert run1(env, proc()) is ZoneState.EMPTY
    assert dev.resets == 1


def test_zns_driver_requires_zns_device():
    env = Environment()
    nvme = make_device(env, "nvme")
    ctx = ModContext(env, DEFAULT_COST, Tracer(), {"nvme": nvme})
    with pytest.raises(LabStorError):
        ZnsDriverMod("z1", ctx)


def test_zns_driver_in_a_mounted_stack():
    """An append-only stack over ZNS through the full Runtime."""
    sys_ = LabStorSystem(devices=("zns",))
    spec = StackSpec.linear("blk::/zlog", [("ZnsDriverMod", "zlog.drv")])
    spec.nodes[0].attrs = {"device": "zns"}
    stack = sys_.runtime.mount_stack(spec)
    client = sys_.client()

    def proc():
        offsets = []
        for i in range(4):
            off = yield from client.call(
                stack,
                LabRequest(op="blk.append", payload={"zone": 0, "data": bytes([i]) * 4096}),
            )
            offsets.append(off)
        data = yield from client.call(
            stack, LabRequest(op="blk.read", payload={"offset": offsets[2], "size": 4096})
        )
        return offsets, data

    offsets, data = sys_.run(sys_.process(proc()))
    assert offsets == [0, 4096, 8192, 12288]
    assert data == bytes([2]) * 4096
