"""Unit tests for Workers and the Work Orchestrator."""

import pytest

from repro.errors import LabStorError
from repro.core import DynamicPolicy, LabRequest, RoundRobinPolicy, Worker, WorkOrchestrator
from repro.ipc import Completion, QueuePair
from repro.kernel import Cpu
from repro.sim import Environment
from repro.units import msec, usec


def echo_executor(req, x):
    yield from x.work(req.payload.get("work_ns", 1000), span="exec")
    return ("done", req.payload.get("value"))


def make_worker(env, cpu=None, **kw):
    cpu = cpu or Cpu(env, ncores=4)
    return Worker(env, 0, cpu, echo_executor, **kw), cpu


def test_worker_processes_request_and_completes():
    env = Environment()
    worker, _ = make_worker(env)
    qp = QueuePair(env, pop_cost_ns=100)
    worker.assign(qp)
    got = []

    def client():
        qp.submit(LabRequest(op="msg.x", payload={"value": 7}))
        comp = yield env.process(qp.pop_completion())
        got.append(comp.value)

    env.process(client())
    env.run(until=msec(1))
    assert got == [("done", 7)]
    assert worker.processed == 1


def test_worker_executor_error_reported_not_fatal():
    env = Environment()

    def bad_executor(req, x):
        yield x.env.timeout(10)
        raise ValueError("module bug")

    cpu = Cpu(env, ncores=2)
    worker = Worker(env, 0, cpu, bad_executor)
    qp = QueuePair(env)
    worker.assign(qp)
    comps = []

    def client():
        qp.submit(LabRequest(op="msg.x"))
        comp = yield env.process(qp.pop_completion())
        comps.append(comp)
        # worker survives and handles the next request
        qp.submit(LabRequest(op="msg.y"))
        comp2 = yield env.process(qp.pop_completion())
        comps.append(comp2)

    env.process(client())
    env.run(until=msec(1))
    assert isinstance(comps[0].error, ValueError)
    assert comps[1].error is not None  # same bad executor, worker survived
    assert worker.failed == 2
    assert worker.proc.is_alive


def test_ordered_queue_serializes_unordered_overlaps():
    env = Environment()
    log = []

    def slow_executor(req, x):
        log.append(("start", req.payload["i"], env.now))
        yield from x.wait(env.timeout(1000))  # off-core wait
        log.append(("end", req.payload["i"], env.now))

    cpu = Cpu(env, ncores=2)
    worker = Worker(env, 0, cpu, slow_executor, poll_quantum_ns=100)

    qp_ordered = QueuePair(env, ordered=True, pop_cost_ns=10)
    worker.assign(qp_ordered)
    for i in range(3):
        qp_ordered.submit(LabRequest(op="m", payload={"i": i}))
    env.run(until=msec(1))
    starts = [t for kind, i, t in log if kind == "start"]
    ends = [t for kind, i, t in log if kind == "end"]
    # ordered: request i+1 starts only after i completed
    assert all(s >= e for s, e in zip(starts[1:], ends[:-1]))


def test_unordered_queue_allows_overlap():
    env = Environment()
    inflight_peak = [0]
    inflight = [0]

    def slow_executor(req, x):
        inflight[0] += 1
        inflight_peak[0] = max(inflight_peak[0], inflight[0])
        yield from x.wait(env.timeout(5000))
        inflight[0] -= 1

    cpu = Cpu(env, ncores=2)
    worker = Worker(env, 0, cpu, slow_executor, poll_quantum_ns=100)
    qp = QueuePair(env, ordered=False, pop_cost_ns=10)
    worker.assign(qp)
    for i in range(4):
        qp.submit(LabRequest(op="m", payload={"i": i}))
    env.run(until=msec(1))
    assert inflight_peak[0] > 1


def test_worker_sleeps_when_idle_and_wakes_on_work():
    env = Environment()
    worker, _ = make_worker(env, idle_sleep_ns=10_000, poll_quantum_ns=1_000)
    qp = QueuePair(env, pop_cost_ns=10)
    worker.assign(qp)

    def late_client():
        yield env.timeout(msec(5))  # long idle gap: worker must sleep
        qp.submit(LabRequest(op="m", payload={}))
        comp = yield env.process(qp.pop_completion())
        return comp

    p = env.process(late_client())
    env.run(p)
    # awake time must be far less than the 5ms idle gap
    assert worker.awake_time() < msec(1)


def test_decommission_stops_worker():
    env = Environment()
    worker, _ = make_worker(env)
    qp = QueuePair(env)
    worker.assign(qp)
    worker.decommission()
    env.run(until=usec(100))
    assert not worker.running
    assert not worker.proc.is_alive


# --- orchestrator ---------------------------------------------------------
def test_rr_policy_deals_queues_evenly():
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, policy=RoundRobinPolicy(), nworkers=2)
    qps = [QueuePair(env) for _ in range(6)]
    for qp in qps:
        orch.register_queue(qp)
    snapshot = orch.assignment_snapshot()
    assert sorted(len(v) for v in snapshot.values()) == [3, 3]


def test_dynamic_policy_classifies_lq_cq():
    policy = DynamicPolicy(lq_threshold_ns=100_000)
    env = Environment()

    class FastReq:
        est_ns = 1_000

    class SlowReq:
        est_ns = 20_000_000

    lq = QueuePair(env)
    cq = QueuePair(env)
    lq.submit(FastReq())
    cq.submit(SlowReq())
    lqs, cqs = policy.classify([lq, cq])
    assert lq in lqs and cq in cqs


def test_dynamic_policy_separates_lq_cq_workers():
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, policy=DynamicPolicy(), nworkers=4)

    class FastReq:
        est_ns = 1_000

    class SlowReq:
        est_ns = 20_000_000

    lqs = [QueuePair(env) for _ in range(2)]
    cqs = [QueuePair(env) for _ in range(2)]
    for qp in lqs:
        qp.submit(FastReq())
    for qp in cqs:
        qp.submit(SlowReq())
    for qp in lqs + cqs:
        orch.register_queue(qp)
    snapshot = orch.assignment_snapshot()
    lq_workers = {w for w, qids in snapshot.items() if any(q.qid in qids for q in lqs)}
    cq_workers = {w for w, qids in snapshot.items() if any(q.qid in qids for q in cqs)}
    assert lq_workers and cq_workers
    assert lq_workers.isdisjoint(cq_workers)


def test_orchestrator_scales_up_under_load():
    env = Environment()
    cpu = Cpu(env, ncores=16)

    def busy_executor(req, x):
        yield from x.work(200_000, span="exec")  # 200us CPU per request

    orch = WorkOrchestrator(
        env, cpu, busy_executor, policy=DynamicPolicy(), nworkers=1,
        max_workers=8, interval_ns=msec(1),
    )
    qp = QueuePair(env, ordered=False)
    orch.register_queue(qp)

    def flood():
        for _ in range(3000):
            qp.submit(LabRequest(op="m", payload={}))
            yield env.timeout(3_000)  # ~330k req/s demand >> 1 worker capacity

    env.process(flood())
    env.run(until=msec(8))
    assert orch.worker_count() > 1


def test_decommission_worker_reassigns_queues():
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=2)
    qps = [QueuePair(env) for _ in range(4)]
    for qp in qps:
        orch.register_queue(qp)
    victim = orch.workers[0]
    orch.decommission_worker(victim)
    orch.rebalance()
    snapshot = orch.assignment_snapshot()
    assert victim.worker_id not in snapshot
    assigned = [q for qids in snapshot.values() for q in qids]
    assert sorted(assigned) == sorted(qp.qid for qp in qps)


def test_spawn_beyond_max_rejected():
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=2, max_workers=2)
    with pytest.raises(LabStorError):
        orch.spawn_worker()


# --- regressions: ISSUE 1 orchestrator scale-in -------------------------
def test_decommission_rebalances_immediately_no_stranded_queues():
    """Retiring a worker must hand its queues to survivors right away,
    not leave them stranded until the next epoch's rebalance."""
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=2)
    qps = [QueuePair(env) for _ in range(4)]
    for qp in qps:
        orch.register_queue(qp)
    victim = orch.workers[1]
    orch.decommission_worker(victim)
    # no manual rebalance() here — the decommission itself must cover it
    snapshot = orch.assignment_snapshot()
    assigned = sorted(q for qids in snapshot.values() for q in qids)
    assert assigned == sorted(qp.qid for qp in qps)


def test_decommission_drops_prev_busy_entry():
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=3)
    victim = orch.workers[2]
    assert victim.worker_id in orch._prev_busy
    orch.decommission_worker(victim)
    assert victim.worker_id not in orch._prev_busy
    assert set(orch._prev_busy) == {w.worker_id for w in orch.workers}


def test_decommission_folds_final_busy_delta_into_demand():
    """Scale-in must not under-report demand: the retiree's busy time this
    epoch still counts toward measured_demand_cores()."""
    env = Environment()
    cpu = Cpu(env, ncores=8)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=2)
    victim = orch.workers[1]
    grant = victim.core.request()  # occupy the retiree's core...

    def wait():
        yield env.timeout(1000)  # ...for 1000ns of this epoch

    env.run(env.process(wait()))
    victim.core.release(grant)
    orch.decommission_worker(victim)
    # 1000ns busy over a 1000ns epoch on one (retired) core ~= 1.0 cores,
    # plus whatever the surviving worker's poll loop consumed
    assert orch.measured_demand_cores() >= 1.0
