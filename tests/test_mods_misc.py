"""Tests for drivers, schedulers, compression, KVS and KO manager."""

import pytest

from repro.core import KernelOpsManager, KthreadState, LabRequest, StackSpec
from repro.core.labmod import ExecContext, ModContext
from repro.errors import FsError, LabStorError
from repro.kernel import DEFAULT_COST
from repro.mods import (
    BlkSwitchSchedMod,
    CompressionMod,
    DaxDriverMod,
    KernelDriverMod,
    NoOpSchedMod,
    SpdkDriverMod,
)
from repro.devices import make_device
from repro.mods.generic_kvs import GenericKVS
from repro.sim import Environment, Tracer
from repro.system import LabStorSystem
from repro.units import KiB, MiB


def ctx_with(env, devices, attrs=None):
    return ModContext(env, DEFAULT_COST, Tracer(), devices, attrs or {})


def run1(env, gen):
    return env.run(env.process(gen))


# --- drivers -------------------------------------------------------------
def test_kernel_driver_write_read():
    env = Environment()
    dev = make_device(env, "nvme")
    drv = KernelDriverMod("d0", ctx_with(env, {"nvme": dev}))
    x = ExecContext(env, Tracer())

    def proc():
        yield from drv.handle(
            LabRequest(op="blk.write", payload={"offset": 0, "size": 4096, "data": b"K" * 4096}), x
        )
        return (
            yield from drv.handle(
                LabRequest(op="blk.read", payload={"offset": 0, "size": 4096}), x
            )
        )

    assert run1(env, proc()) == b"K" * 4096
    assert drv.ios == 2


def test_kernel_driver_blk_path_slower_than_hctx():
    def one_write(io_path):
        env = Environment()
        dev = make_device(env, "nvme")
        drv = KernelDriverMod("d0", ctx_with(env, {"nvme": dev}, {"io_path": io_path}))
        x = ExecContext(env, Tracer())

        def proc():
            yield from drv.handle(
                LabRequest(op="blk.write", payload={"offset": 0, "size": 4096, "data": b"x" * 4096}),
                x,
            )
            return env.now

        return run1(env, proc())

    assert one_write("hctx") < one_write("blk")


def test_kernel_driver_bad_io_path():
    env = Environment()
    dev = make_device(env, "nvme")
    with pytest.raises(LabStorError):
        KernelDriverMod("d0", ctx_with(env, {"nvme": dev}, {"io_path": "warp"}))


def test_spdk_requires_nvme():
    env = Environment()
    hdd = make_device(env, "hdd")
    with pytest.raises(LabStorError, match="requires device"):
        SpdkDriverMod("s0", ctx_with(env, {"hdd": hdd}))


def test_spdk_faster_than_kernel_driver():
    def one(cls):
        env = Environment()
        dev = make_device(env, "nvme")
        drv = cls("d", ctx_with(env, {"nvme": dev}))
        x = ExecContext(env, Tracer())

        def proc():
            yield from drv.handle(
                LabRequest(op="blk.write", payload={"offset": 0, "size": 4096, "data": b"x" * 4096}),
                x,
            )
            return env.now

        return run1(env, proc())

    assert one(SpdkDriverMod) < one(KernelDriverMod)


def test_dax_driver_roundtrip_on_pmem():
    env = Environment()
    pmem = make_device(env, "pmem")
    drv = DaxDriverMod("x0", ctx_with(env, {"pmem": pmem}))
    x = ExecContext(env, Tracer())

    def proc():
        yield from drv.handle(
            LabRequest(op="blk.write", payload={"offset": 4096, "size": 11, "data": b"persist me!"}),
            x,
        )
        return (
            yield from drv.handle(
                LabRequest(op="blk.read", payload={"offset": 4096, "size": 11}), x
            )
        )

    assert run1(env, proc()) == b"persist me!"


def test_dax_requires_pmem():
    env = Environment()
    nvme = make_device(env, "nvme")
    with pytest.raises(LabStorError, match="requires device"):
        DaxDriverMod("x0", ctx_with(env, {"nvme": nvme}))


def test_driver_device_attr_required_when_ambiguous():
    env = Environment()
    devs = {"nvme": make_device(env, "nvme"), "hdd": make_device(env, "hdd")}
    with pytest.raises(LabStorError, match="'device' attr required"):
        KernelDriverMod("d0", ctx_with(env, devs))


def test_driver_rejects_non_blk_request():
    env = Environment()
    dev = make_device(env, "nvme")
    drv = KernelDriverMod("d0", ctx_with(env, {"nvme": dev}))
    x = ExecContext(env, Tracer())

    def proc():
        with pytest.raises(LabStorError, match="non-blk"):
            yield from drv.handle(LabRequest(op="fs.open", payload={}), x)
        return True

    assert run1(env, proc())


# --- schedulers ------------------------------------------------------------
def _chain_sched_to_sink(env, sched):
    seen = []

    class Sink:
        uuid = "sink"

        def handle(self, req, x):
            seen.append(req.payload.get("hctx"))
            yield x.env.timeout(1)
            return None

    sched.next = [Sink()]
    return seen


def test_noop_maps_by_origin_core():
    env = Environment()
    sched = NoOpSchedMod("n0", ctx_with(env, {}, {"nqueues": 4}))
    seen = _chain_sched_to_sink(env, sched)
    x = ExecContext(env, Tracer())

    def proc():
        yield from sched.handle(
            LabRequest(op="blk.write", payload={"origin_core": 6, "data": b"z"}), x
        )

    run1(env, proc())
    assert seen == [2]


def test_blkswitch_large_requests_pick_least_loaded_throughput_lane():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=4)
    sched = BlkSwitchSchedMod("b0", ctx_with(env, {"nvme": dev}))
    # queue 0 is the latency lane (nqueues//4 = 1); 1..3 are throughput
    sched.inflight_bytes = [0, 100, 5, 50]
    seen = _chain_sched_to_sink(env, sched)
    x = ExecContext(env, Tracer())
    big = b"z" * (64 * KiB)

    def proc():
        yield from sched.handle(
            LabRequest(op="blk.write", payload={"data": big, "size": len(big)}), x
        )

    run1(env, proc())
    assert seen == [2]  # least-loaded throughput queue, never queue 0
    assert sched.inflight_bytes == [0, 100, 5, 50]  # restored after completion


def test_blkswitch_small_requests_confined_to_latency_lane():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=4)
    sched = BlkSwitchSchedMod("b0", ctx_with(env, {"nvme": dev}))
    sched.inflight_bytes = [100, 0, 0, 0]  # latency lane busy, others idle
    seen = _chain_sched_to_sink(env, sched)
    x = ExecContext(env, Tracer())

    def proc():
        yield from sched.handle(
            LabRequest(op="blk.write", payload={"data": b"z", "size": 1}), x
        )

    run1(env, proc())
    assert seen == [0]  # small I/O stays in its lane


# --- compression ---------------------------------------------------------
def test_compression_roundtrip_through_stack():
    sys_ = LabStorSystem(devices=("nvme",))
    spec = sys_.stack("fs::/c").fs(variant="min").build()
    # splice a compression stage between LabFS and the cache
    fs_node = next(n for n in spec.nodes if "labfs" in n.uuid)
    from repro.core import NodeSpec

    comp = NodeSpec(mod_name="CompressionMod", uuid="comp0", attrs={})
    comp.outputs = list(fs_node.outputs)
    fs_node.outputs = ["comp0"]
    spec.nodes.insert(spec.nodes.index(fs_node) + 1, comp)
    sys_.runtime.mount_stack(spec)
    from repro.mods.generic_fs import GenericFS

    gfs = GenericFS(sys_.client())
    payload = b"compressible " * 300  # repetitive: compresses well

    def proc():
        yield from gfs.write_file("fs::/c/z", payload)
        return (yield from gfs.read_file("fs::/c/z"))

    assert sys_.run(sys_.process(proc())) == payload
    comp_mod = sys_.runtime.registry.get("comp0")
    assert comp_mod.bytes_out < comp_mod.bytes_in


def test_compression_incompressible_stored_raw():
    import numpy as np

    env = Environment()
    comp = CompressionMod("c0", ctx_with(env, {}))
    stored = {}

    class Sink:
        uuid = "sink"

        def handle(self, req, x):
            stored["data"] = req.payload["data"]
            yield x.env.timeout(1)

    comp.next = [Sink()]
    x = ExecContext(env, Tracer())
    noise = np.random.default_rng(1).integers(0, 256, 1000, dtype=np.uint8).tobytes()

    def proc():
        yield from comp.handle(LabRequest(op="blk.write", payload={"data": noise}), x)

    run1(env, proc())
    assert stored["data"] == noise  # incompressible: raw passthrough


def test_compression_synthetic_path_for_large_payloads():
    env = Environment()
    comp = CompressionMod("c0", ctx_with(env, {}, {"ratio": 0.25}))
    sizes = {}

    class Sink:
        uuid = "sink"

        def handle(self, req, x):
            sizes["n"] = len(req.payload["data"])
            yield x.env.timeout(1)

    comp.next = [Sink()]
    x = ExecContext(env, Tracer())
    big = b"q" * (1 * MiB)

    def proc():
        yield from comp.handle(LabRequest(op="blk.write", payload={"data": big}), x)

    run1(env, proc())
    assert sizes["n"] == len(big) // 4


# --- LabKVS details ---------------------------------------------------------
def test_kvs_overwrite_replaces_value():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/k", variant="min")
    kvs = GenericKVS(sys_.client(), "kvs::/k")

    def proc():
        yield from kvs.put("k1", b"short")
        yield from kvs.put("k1", b"a much longer replacement value" * 100)
        return (yield from kvs.get("k1"))

    assert sys_.run(sys_.process(proc())) == b"a much longer replacement value" * 100


def test_kvs_get_missing_key_raises():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/k", variant="min")
    kvs = GenericKVS(sys_.client(), "kvs::/k")

    def proc():
        with pytest.raises(FsError, match="ENOENT"):
            yield from kvs.get("ghost")
        return True

    assert sys_.run(sys_.process(proc()))


def test_kvs_state_repair_rebuilds_table():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_kvs_stack("kvs::/k", variant="min", uuid_prefix="kv")
    kvs = GenericKVS(sys_.client(), "kvs::/k")
    labkvs = sys_.runtime.registry.get("kv.labkvs")

    def proc():
        yield from kvs.put("stable", b"S" * 5000)
        labkvs.table = {}
        labkvs.state_repair()
        return (yield from kvs.get("stable"))

    assert sys_.run(sys_.process(proc())) == b"S" * 5000


# --- KO manager ----------------------------------------------------------
def test_komgr_driver_deploy_lifecycle():
    env = Environment()
    ko = KernelOpsManager(env)
    dev = make_device(env, "nvme")
    ko.register_device("nvme", dev)

    def proc():
        yield env.process(ko.insmod())
        yield env.process(ko.deploy_driver("drv0", "nvme"))
        return ko.device_for("drv0")

    assert run1(env, proc()) is dev


def test_komgr_requires_insmod_first():
    env = Environment()
    ko = KernelOpsManager(env)
    ko.register_device("nvme", make_device(env, "nvme"))
    with pytest.raises(LabStorError, match="not inserted"):
        # deploy_driver raises before the first yield
        gen = ko.deploy_driver("d", "nvme")
        next(gen)


def test_komgr_kthread_lifecycle():
    env = Environment()
    ko = KernelOpsManager(env)

    def proc():
        kid = yield env.process(ko.spawn_kthread())
        ko.freeze_kthread(kid)
        assert ko.kthreads[kid] is KthreadState.FROZEN
        ko.thaw_kthread(kid)
        ko.terminate_kthread(kid)
        return ko.kthreads[kid]

    assert run1(env, proc()) is KthreadState.TERMINATED


def test_komgr_unknown_kthread():
    env = Environment()
    ko = KernelOpsManager(env)
    with pytest.raises(LabStorError):
        ko.freeze_kthread(99)
