"""Tests for repro.ctl: windowed metrics view, health checks, actuator
hysteresis, and the control daemon's convergence/no-op/oracle contracts."""

import pytest

from repro.ctl import (
    Actuators,
    AdmissionController,
    ControlDaemon,
    MetricsView,
    SelfHealController,
)
from repro.ctl.health import Health, QueueSaturation, SloBurn
from repro.ctl.presets import build_chaos_control
from repro.obs.metrics import MetricsRegistry
from repro.units import msec, usec


# ---------------------------------------------------------------------------
# MetricsView / MetricsWindow primitives
# ---------------------------------------------------------------------------
class TestMetricsWindow:
    def test_deltas_cover_only_the_window(self):
        reg = MetricsRegistry()
        view = MetricsView(reg)
        reg.inc("ops", 5, tenant="a")
        w1 = view.advance(1000)
        assert w1.delta("ops", tenant="a") == 5
        reg.inc("ops", 3, tenant="a")
        w2 = view.advance(2000)
        assert w2.delta("ops", tenant="a") == 3  # not 8: windowed
        assert w2.elapsed_ns == 1000
        assert w2.rate("ops", tenant="a") == pytest.approx(3e9 / 1000)

    def test_delta_sum_and_values_partial_filter(self):
        reg = MetricsRegistry()
        view = MetricsView(reg)
        reg.inc("ops", 2, tenant="a", op="get")
        reg.inc("ops", 3, tenant="a", op="put")
        reg.inc("ops", 7, tenant="b", op="get")
        w = view.advance(1000)
        assert w.delta_sum("ops", tenant="a") == 5
        assert w.delta_sum("ops") == 12
        pairs = w.delta_values("ops", op="get")
        assert sorted((p["tenant"], v) for p, v in pairs) == [("a", 2), ("b", 7)]

    def test_quantile_merges_partial_label_matches(self):
        reg = MetricsRegistry()
        view = MetricsView(reg)
        for _ in range(100):
            reg.observe("lat", 1_000, tenant="a")
        for _ in range(100):
            reg.observe("lat", 1_000_000, tenant="b")
        w = view.advance(1000)
        assert w.count("lat") == 200
        # aggregate p99 must see tenant b's slow tail, per-tenant must not
        assert w.quantile("lat", 0.99) >= 1_000_000
        assert w.quantile("lat", 0.99, tenant="a") < 10_000
        assert w.quantile("lat", 0.5, default=-1.0, tenant="zzz") == -1.0

    def test_window_histograms_reset_between_ticks(self):
        reg = MetricsRegistry()
        view = MetricsView(reg)
        reg.observe("lat", 500)
        view.advance(1000)
        w2 = view.advance(2000)
        assert w2.count("lat") == 0
        assert w2.quantile("lat", 0.99) is None

    def test_gauges_read_through_with_absent_default(self):
        reg = MetricsRegistry()
        view = MetricsView(reg)
        reg.set_gauge("deadline", 150.0, tenant="a")
        reg.set_gauge("deadline", 1000.0, tenant="b")
        w = view.advance(1000)
        assert w.gauge("deadline", tenant="a") == 150.0
        assert w.gauge("deadline", default=-1.0, tenant="zzz") == -1.0
        assert not w.has_gauge("deadline", tenant="zzz")
        vals = dict((p["tenant"], v) for p, v in w.gauge_values("deadline"))
        assert vals == {"a": 150.0, "b": 1000.0}


# ---------------------------------------------------------------------------
# health checks
# ---------------------------------------------------------------------------
class TestHealth:
    def test_health_level_validated_and_ordered(self):
        with pytest.raises(ValueError):
            Health("bogus")
        assert Health("ok").severity < Health("warn").severity < \
            Health("crit").severity

    def test_queue_saturation_validates_thresholds(self):
        with pytest.raises(ValueError):
            QueueSaturation(warn_depth=0)
        with pytest.raises(ValueError):
            QueueSaturation(warn_depth=64, crit_depth=32)

    def test_slo_burn_validates_thresholds(self):
        with pytest.raises(ValueError):
            SloBurn(warn_burn=0.5, crit_burn=0.1)


# ---------------------------------------------------------------------------
# actuator hysteresis (anti-flapping)
# ---------------------------------------------------------------------------
class _Flapper:
    """A deliberately oscillating controller: every tick it demands the
    admission limit toggle — the hysteresis gate must slow it down."""

    name = "flapper"

    def actuate(self, ctx, act):
        limit = act._admission.max_inflight
        act.set_admission_limit(9 if limit != 9 else 17, reason="flap")


class TestAntiFlapping:
    def test_flapping_controller_is_rate_limited(self):
        system, engine, _ = build_chaos_control(with_daemon=False,
                                                with_faults=False,
                                                duration_ns=msec(10))
        policy = engine.policy
        actuators = Actuators(system, cooldown_ticks=3,
                              max_actions_per_tick=1).bind_admission(policy)
        daemon = ControlDaemon(system, interval_ns=usec(500),
                               controllers=[_Flapper()], actuators=actuators)
        engine.run()
        assert daemon.ticks >= 10
        changes = [a for a in actuators.actions if a.knob == "admission"]
        assert changes, "flapper never landed a change"
        assert actuators.suppressed > 0, "hysteresis never engaged"
        # a knob may move at most once per cooldown_ticks control ticks
        ticks = [a.tick for a in changes]
        assert all(b - a >= 3 for a, b in zip(ticks, ticks[1:])), ticks
        system.shutdown()

    def test_per_tick_action_budget_holds(self):
        system, engine, daemon = build_chaos_control(duration_ns=msec(20))
        engine.run()
        per_tick: dict[int, int] = {}
        for a in daemon.actuators.actions:
            if not a.urgent:
                per_tick[a.tick] = per_tick.get(a.tick, 0) + 1
        budget = daemon.actuators.max_actions_per_tick
        assert all(n <= budget for n in per_tick.values()), per_tick
        # and non-urgent changes respect the per-knob cooldown
        cooldown = daemon.actuators.cooldown_ticks
        by_knob: dict[str, int] = {}
        for a in daemon.actuators.actions:
            if a.urgent:
                continue
            last = by_knob.get(a.knob)
            assert last is None or a.tick - last >= cooldown, (a.knob, a.tick)
            by_knob[a.knob] = a.tick
        system.shutdown()

    def test_urgent_bypasses_cooldown(self):
        system, engine, _ = build_chaos_control(with_daemon=False,
                                                with_faults=False)
        actuators = Actuators(system, cooldown_ticks=100,
                              max_actions_per_tick=1)
        actuators.bind_admission(engine.policy)
        actuators.begin_tick(1)
        assert actuators.set_admission_limit(5, reason="a")
        assert not actuators.set_admission_limit(6, reason="b")  # cooldown
        assert actuators.set_admission_limit(7, reason="c", urgent=True)
        assert actuators.suppressed == 1
        system.shutdown()


# ---------------------------------------------------------------------------
# chaos convergence: the daemon heals what the storm breaks
# ---------------------------------------------------------------------------
class TestChaosConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_daemon_heals_within_budget(self, seed):
        system, engine, daemon = build_chaos_control(seed=seed)
        summary = engine.run()
        # the storm kills two workers and power-cuts the runtime with no
        # scheduled restart: by end of run the daemon must have fixed both
        assert system.runtime.online, f"seed {seed}: runtime still down"
        assert not system.runtime.orchestrator.dead_workers, \
            f"seed {seed}: crashed workers never respawned"
        assert daemon.actions_taken > 0
        restarts = [a for a in daemon.actuators.actions if a.knob == "runtime"]
        heals = [a for a in daemon.actuators.actions
                 if a.knob == "workers" and a.urgent]
        assert restarts, f"seed {seed}: no restart action"
        assert heals, f"seed {seed}: no heal action"
        # recovery happened with virtual time to spare: ops completed after
        # the last repair landed
        assert summary["totals"]["completed"] > 0
        system.shutdown()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_without_daemon_the_storm_sticks(self, seed):
        system, engine, daemon = build_chaos_control(seed=seed,
                                                     with_daemon=False)
        assert daemon is None
        engine.run()
        # no healer: the 6ms power cut (no restart_after) is permanent
        assert not system.runtime.online, f"seed {seed}: who restarted it?"
        system.shutdown(drain=False)

    def test_daemon_outperforms_no_daemon(self):
        goods = {}
        for with_daemon in (True, False):
            system, engine, _ = build_chaos_control(with_daemon=with_daemon)
            summary = engine.run()
            goods[with_daemon] = summary["totals"]["good"]
            system.shutdown(drain=system.runtime.online)
        assert goods[True] > 2 * goods[False], goods


# ---------------------------------------------------------------------------
# no-op safety: green checks leave the data path untouched
# ---------------------------------------------------------------------------
class TestNoOpSafety:
    def _run(self, with_daemon):
        system, engine, _ = build_chaos_control(with_daemon=False,
                                                with_faults=False,
                                                duration_ns=msec(10))
        daemon = None
        if with_daemon:
            daemon = ControlDaemon(system, interval_ns=usec(500),
                                   controllers=[SelfHealController()])
        summary = engine.run()
        snapshot = system.telemetry.registry.snapshot()
        system.shutdown()
        return summary, snapshot, daemon

    def test_green_checks_take_zero_actions_and_change_nothing(self):
        base_summary, base_snap, _ = self._run(with_daemon=False)
        summary, snap, daemon = self._run(with_daemon=True)
        assert daemon.ticks > 0
        assert all(lvl == "ok"
                   for rec in daemon.history for lvl in rec.levels.values()), \
            "a healthy run raised a non-green verdict"
        assert daemon.actions_taken == 0, daemon.actuators.actions
        # observing must not perturb: identical goodput and telemetry
        assert summary["totals"] == base_summary["totals"]
        assert snap == base_snap


# ---------------------------------------------------------------------------
# determinism + E15 oracle regression
# ---------------------------------------------------------------------------
def test_control_scenario_is_deterministic(determinism_check):
    from repro.sim.check import SCENARIOS

    determinism_check(SCENARIOS["control"])


class TestControlPlane:
    def test_controller_beats_static_and_nears_oracle(self):
        from repro.experiments.control_plane import sweep_control_plane

        r = sweep_control_plane(limits=(4, 32), seed=0, processes=1)
        assert r["beats_static"], (
            f"controller {r['controller_total']} <= "
            f"static-best {r['static_best_total']}")
        assert r["vs_oracle"] >= 0.9, (
            f"controller at {r['vs_oracle']:.0%} of oracle")

    def test_sweep_identical_across_process_counts(self):
        from repro.experiments.control_plane import sweep_control_plane

        r1 = sweep_control_plane(limits=(4,), seed=0, processes=1)
        r2 = sweep_control_plane(limits=(4,), seed=0, processes=2)
        assert r1 == r2


# ---------------------------------------------------------------------------
# cluster-node daemon: registry=/rng= passed explicitly
# ---------------------------------------------------------------------------
class TestClusterDaemon:
    def test_daemon_steers_a_cluster_node(self):
        from repro.cluster import cluster

        cl = (
            cluster(seed=5, telemetry=True)
            .node("n0").stack("kvs::/a").kvs(variant="min").device("nvme")
            .node("n1").stack("kvs::/b").kvs(variant="min").device("nvme")
            .build()
        )
        node = cl.nodes["n0"]
        # a Node owns neither a telemetry handle nor an RngRegistry: the
        # daemon requires both seams explicitly
        from repro.errors import LabStorError

        with pytest.raises(LabStorError, match="registry"):
            ControlDaemon(node, interval_ns=usec(100))
        daemon = ControlDaemon(node, interval_ns=usec(100),
                               registry=cl.telemetry.registry,
                               rng=cl.rngs.stream("n0.ctl"))

        def idle():
            yield cl.env.timeout(msec(1))

        cl.run(cl.process(idle()))
        assert daemon.ticks >= 9
        assert "worker_liveness" in daemon.last_health
        assert daemon.last_health["worker_liveness"].ok
        cl.shutdown()
