"""Integration tests for LabFS through full LabStacks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FsError, PermissionDenied
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.units import KiB


def make(variant="min", device="nvme"):
    sys_ = LabStorSystem(devices=(device,))
    sys_.mount_fs_stack("fs::/t", variant=variant, device=device)
    client = sys_.client()
    return sys_, GenericFS(client)


def run(sys_, gen):
    return sys_.run(sys_.process(gen))


@pytest.mark.parametrize("variant", ["all", "min", "d"])
def test_write_read_roundtrip_all_variants(variant):
    sys_, gfs = make(variant)
    payload = b"labstor data " * 1000

    def proc():
        yield from gfs.write_file("fs::/t/file.bin", payload)
        return (yield from gfs.read_file("fs::/t/file.bin"))

    assert run(sys_, proc()) == payload


def test_unaligned_overwrite_preserves_neighbors():
    sys_, gfs = make()

    def proc():
        fd = yield from gfs.open("fs::/t/f", create=True)
        yield from gfs.write(fd, b"A" * 10_000, offset=0)
        yield from gfs.write(fd, b"B" * 100, offset=5000)
        return (yield from gfs.read(fd, 10_000, offset=0))

    data = run(sys_, proc())
    assert data[:5000] == b"A" * 5000
    assert data[5000:5100] == b"B" * 100
    assert data[5100:] == b"A" * 4900


def test_sparse_write_reads_zeros_in_hole():
    sys_, gfs = make()

    def proc():
        fd = yield from gfs.open("fs::/t/sparse", create=True)
        yield from gfs.write(fd, b"end", offset=20_000)
        return (yield from gfs.read(fd, 20_003, offset=0))

    data = run(sys_, proc())
    assert data[:20_000] == b"\x00" * 20_000
    assert data[20_000:] == b"end"


def test_read_past_eof_truncated():
    sys_, gfs = make()

    def proc():
        fd = yield from gfs.open("fs::/t/short", create=True)
        yield from gfs.write(fd, b"12345", offset=0)
        return (yield from gfs.read(fd, 4096, offset=0))

    assert run(sys_, proc()) == b"12345"


def test_sequential_positioned_io():
    sys_, gfs = make()

    def proc():
        fd = yield from gfs.open("fs::/t/seq", create=True)
        yield from gfs.write(fd, b"aaa")
        yield from gfs.write(fd, b"bbb")
        yield from gfs.seek(fd, 0)
        return (yield from gfs.read(fd, 6))

    assert run(sys_, proc()) == b"aaabbb"


def test_create_unlink_recreate():
    sys_, gfs = make()

    def proc():
        yield from gfs.write_file("fs::/t/x", b"one")
        yield from gfs.unlink("fs::/t/x")
        st_err = None
        try:
            yield from gfs.stat("fs::/t/x")
        except FsError as e:
            st_err = e.errno_name
        yield from gfs.write_file("fs::/t/x", b"two")
        data = yield from gfs.read_file("fs::/t/x")
        return st_err, data

    st_err, data = run(sys_, proc())
    assert st_err == "ENOENT"
    assert data == b"two"


def test_rename_moves_data():
    sys_, gfs = make()

    def proc():
        yield from gfs.write_file("fs::/t/a", b"payload")
        yield from gfs.rename("fs::/t/a", "fs::/t/b")
        return (yield from gfs.read_file("fs::/t/b"))

    assert run(sys_, proc()) == b"payload"


def test_unlink_frees_blocks_for_reuse():
    sys_, gfs = make()
    labfs = sys_.runtime.registry.get(
        next(u for u in sys_.runtime.registry.uuids() if u.endswith("labfs"))
    )

    def proc():
        yield from gfs.write_file("fs::/t/big", b"z" * (64 * KiB))
        before = labfs.allocator.free_count()
        yield from gfs.unlink("fs::/t/big")
        after = labfs.allocator.free_count()
        return before, after

    before, after = run(sys_, proc())
    assert after == before + 16  # 64KiB / 4KiB blocks returned


def test_permissions_mod_denies_unauthorized_uid():
    sys_, gfs = make(variant="all")
    perm_uuid = next(u for u in sys_.runtime.registry.uuids() if u.endswith("perm"))
    perm = sys_.runtime.registry.get(perm_uuid)
    perm.set_acl("/secret", {42})

    def proc():
        with pytest.raises(PermissionDenied):
            yield from gfs.open("fs::/t/secret/file", create=True)
        # uid 42 passes
        stack, rem = sys_.runtime.namespace.resolve("fs::/t/secret/file")
        from repro.core import LabRequest

        ino = yield from gfs.client.call(
            stack, LabRequest(op="fs.open", payload={"path": rem, "create": True, "uid": 42})
        )
        return ino

    assert run(sys_, proc()) >= 1
    assert perm.denied == 1


def test_crash_recovery_rebuilds_inodes_from_log():
    """Wipe LabFS's in-memory inode table, run StateRepair, data survives."""
    sys_, gfs = make(variant="min")
    labfs_uuid = next(u for u in sys_.runtime.registry.uuids() if u.endswith("labfs"))
    labfs = sys_.runtime.registry.get(labfs_uuid)

    def proc():
        yield from gfs.write_file("fs::/t/persist", b"P" * 8192)
        # simulate the Runtime losing its in-memory state
        labfs.inodes = {}
        labfs.by_path = {}
        labfs.state_repair()
        return (yield from gfs.read_file("fs::/t/persist"))

    assert run(sys_, proc()) == b"P" * 8192
    assert labfs.repairs == 1


def test_lru_cache_hits_on_reread():
    sys_, gfs = make(variant="min")
    lru = sys_.runtime.registry.get(
        next(u for u in sys_.runtime.registry.uuids() if u.endswith("lru"))
    )

    def proc():
        yield from gfs.write_file("fs::/t/c", b"c" * 8192)
        yield from gfs.read_file("fs::/t/c")
        yield from gfs.read_file("fs::/t/c")

    run(sys_, proc())
    assert lru.hits >= 2


def test_cached_read_faster_than_cold_read():
    sys_, gfs = make(variant="min")

    def proc():
        yield from gfs.write_file("fs::/t/hot", b"h" * 4096)
        lru = sys_.runtime.registry.get(
            next(u for u in sys_.runtime.registry.uuids() if u.endswith("lru"))
        )
        lru.pages.clear()  # force a cold first read
        t0 = sys_.env.now
        yield from gfs.read_file("fs::/t/hot")
        cold = sys_.env.now - t0
        t1 = sys_.env.now
        yield from gfs.read_file("fs::/t/hot")
        warm = sys_.env.now - t1
        return cold, warm

    cold, warm = run(sys_, proc())
    assert warm < cold


def test_fsync_issues_flush():
    sys_, gfs = make(variant="min")
    dev = sys_.devices["nvme"]

    def proc():
        fd = yield from gfs.open("fs::/t/d", create=True)
        yield from gfs.write(fd, b"x" * 4096, offset=0)
        before = dev.completed
        yield from gfs.fsync(fd)
        return dev.completed - before

    assert run(sys_, proc()) >= 1  # at least the flush command


def test_two_stacks_same_device_different_views():
    """Multiple LabStacks over one device: namespaces stay independent."""
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/a", variant="min", uuid_prefix="sa")
    sys_.mount_fs_stack("fs::/b", variant="min", uuid_prefix="sb")
    client = sys_.client()
    gfs = GenericFS(client)

    def proc():
        yield from gfs.write_file("fs::/a/f", b"from-a")
        exists_in_b = True
        try:
            yield from gfs.stat("fs::/b/f")
        except FsError:
            exists_in_b = False
        data = yield from gfs.read_file("fs::/a/f")
        return data, exists_in_b

    data, exists_in_b = run(sys_, proc())
    assert data == b"from-a"
    assert not exists_in_b


@settings(max_examples=15, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 40_000), st.binary(min_size=1, max_size=12_000)),
        min_size=1,
        max_size=5,
    )
)
def test_property_labfs_matches_flat_buffer(writes):
    """LabFS positioned writes/reads behave like one big buffer."""
    sys_, gfs = make(variant="min")
    model = bytearray(60_000)
    size = 0

    def proc():
        nonlocal size
        fd = yield from gfs.open("fs::/t/prop", create=True)
        for offset, data in writes:
            yield from gfs.write(fd, data, offset=offset)
            model[offset : offset + len(data)] = data
            size = max(size, offset + len(data))
        return (yield from gfs.read(fd, size, offset=0))

    assert run(sys_, proc()) == bytes(model[:size])
