"""Shape tests for every experiment harness (scaled-down parameters).

Each test asserts the *qualitative* result the paper reports — who wins,
roughly by how much, where the crossovers are — using small workloads so
the suite stays fast.  The full-scale sweeps live in benchmarks/.
"""

import pytest

from repro.experiments import (
    anatomy,
    filebench_eval,
    labios_eval,
    live_upgrade,
    metadata,
    orchestration_cpu,
    orchestration_partition,
    pfs_eval,
    schedulers,
    storage_api,
)
from repro.experiments.report import format_table, normalize


# --- E1: anatomy ----------------------------------------------------------
def test_anatomy_write_fractions_match_paper_shape():
    r = anatomy.run_anatomy("write", nops=32)
    f = r["fractions"]
    # device I/O dominates (paper ~66%)
    assert 0.45 < f["Device I/O"] < 0.80
    # page cache is the biggest software slice (paper ~17%)
    assert f["Page cache (LRU)"] == max(
        v for k, v in f.items() if k != "Device I/O"
    )
    assert 0.08 < f["Page cache (LRU)"] < 0.25
    # IPC ~8.4%; permissions and FS metadata ~3% each
    assert 0.03 < f["IPC (shm queues)"] < 0.15
    assert 0.01 < f["Permissions"] < 0.06
    assert 0.01 < f["FS metadata"] < 0.06
    assert abs(sum(f.values()) - 1.0) < 1e-9


def test_anatomy_read_similar_to_write():
    r = anatomy.run_anatomy("read", nops=32)
    assert 0.40 < r["fractions"]["Device I/O"] < 0.80


def test_anatomy_formatting():
    r = anatomy.run_anatomy("write", nops=8)
    text = anatomy.format_anatomy(r)
    assert "Device I/O" in text and "Fig 4(a)" in text


# --- E2: live upgrade --------------------------------------------------------
def test_live_upgrade_cost_approx_5ms_each():
    base = live_upgrade.run_live_upgrade(nmessages=800, nupgrades=0)
    with_up = live_upgrade.run_live_upgrade(nmessages=800, nupgrades=8)
    per_upgrade_ms = (with_up["elapsed_s"] - base["elapsed_s"]) * 1000 / 8
    assert 2.0 < per_upgrade_ms < 10.0  # paper: ~5ms
    assert with_up["upgrades_done"] == 8


def test_live_upgrade_decentralized_slower():
    cen = live_upgrade.run_live_upgrade(nmessages=600, nupgrades=8)
    dec = live_upgrade.run_live_upgrade(nmessages=600, nupgrades=8,
                                        upgrade_type="decentralized")
    assert dec["elapsed_s"] > cen["elapsed_s"]


# --- E3: orchestration CPU ---------------------------------------------------
def test_single_worker_saturates_dynamic_tracks():
    one = orchestration_cpu.run_orchestration_cpu(nclients=8, workers="1worker",
                                                  ops_per_client=300)
    eight = orchestration_cpu.run_orchestration_cpu(nclients=8, workers="8workers",
                                                    ops_per_client=300)
    dyn = orchestration_cpu.run_orchestration_cpu(nclients=8, workers="dynamic",
                                                  ops_per_client=300)
    # paper: 1 worker loses ~50% vs 8 workers at high client counts
    assert one["iops"] < 0.6 * eight["iops"]
    # dynamic uses clearly fewer cores than the 8-worker config
    assert dyn["busy_cores"] < 0.75 * eight["busy_cores"]
    # while recovering most of the performance
    assert dyn["iops"] > 1.4 * one["iops"]


# --- E4: partitioning ---------------------------------------------------------
def test_dynamic_partitioning_protects_latency():
    rr = orchestration_partition.run_partition(nworkers=4, policy="rr",
                                               creates_per_thread=60,
                                               writes_per_thread=3)
    dyn = orchestration_partition.run_partition(nworkers=4, policy="dynamic",
                                                creates_per_thread=60,
                                                writes_per_thread=3)
    # paper: RR destroys L-App tail latency; dynamic restores it
    assert dyn["l_lat_p99_us"] < rr["l_lat_p99_us"] / 5
    # at a bandwidth cost
    assert dyn["c_bw_MBps"] <= rr["c_bw_MBps"]


def test_partition_bandwidth_cost_shrinks_with_workers():
    def cost(n):
        rr = orchestration_partition.run_partition(nworkers=n, policy="rr",
                                                   creates_per_thread=40,
                                                   writes_per_thread=3)
        dyn = orchestration_partition.run_partition(nworkers=n, policy="dynamic",
                                                    creates_per_thread=40,
                                                    writes_per_thread=3)
        return 1 - dyn["c_bw_MBps"] / rr["c_bw_MBps"]

    assert cost(8) < cost(2)  # paper: 30% -> 6%


# --- E5: storage APIs ----------------------------------------------------------
def test_storage_api_nvme_ordering():
    rows = storage_api.sweep_storage_api(devices=("nvme",), sizes=(4096,), nops=120)
    iops = {r["interface"]: r["iops"] for r in rows}
    # paper Fig 6 ordering on NVMe 4KB
    assert iops["lab_spdk"] > iops["lab_kernel_driver"] > iops["io_uring"]
    assert iops["io_uring"] > iops["posix"] > iops["posix_aio"]
    # Kernel Driver beats io_uring by >= 15%
    assert iops["lab_kernel_driver"] > 1.15 * iops["io_uring"]
    # SPDK adds ~12% over the Kernel Driver (5..20% window)
    assert 1.05 < iops["lab_spdk"] / iops["lab_kernel_driver"] < 1.25


def test_storage_api_gap_collapses_at_128k():
    small = storage_api.sweep_storage_api(devices=("nvme",), sizes=(4096,), nops=100)
    large = storage_api.sweep_storage_api(devices=("nvme",), sizes=(128 * 1024,), nops=100)

    def spread(rows):
        n = normalize({r["interface"]: r["iops"] for r in rows})
        return 1 - min(v for k, v in n.items() if k != "posix_aio")

    assert spread(large) < spread(small) / 2


def test_storage_api_hdd_ties():
    rows = storage_api.sweep_storage_api(devices=("hdd",), sizes=(4096,), hdd_nops=25)
    norm = normalize({r["interface"]: r["iops"] for r in rows})
    assert min(norm.values()) > 0.95  # seek-dominated: everything ties


def test_storage_api_dax_dominates_pmem():
    rows = storage_api.sweep_storage_api(devices=("pmem",), sizes=(4096,), nops=120)
    iops = {r["interface"]: r["iops"] for r in rows}
    assert iops["lab_dax"] > 2 * iops["lab_kernel_driver"]
    assert iops["lab_dax"] > 5 * iops["posix"]


# --- E6: metadata -------------------------------------------------------------
def test_metadata_labfs_beats_kernel_and_scales():
    rows = metadata.sweep_metadata(thread_counts=(1, 8), files_per_thread=30,
                                   configs=("ext4", "labfs-all", "labfs-min", "labfs-d"))
    by = {(r["config"], r["nthreads"]): r["kops_per_sec"] for r in rows}
    # paper: LabFS up to ~3x single-threaded
    assert by[("labfs-all", 1)] > 1.8 * by[("ext4", 1)]
    # removing permissions helps; removing IPC helps more
    assert by[("labfs-min", 1)] > by[("labfs-all", 1)]
    assert by[("labfs-d", 1)] > 1.10 * by[("labfs-min", 1)]
    # LabFS scales with threads; ext4 flatlines on the journal
    assert by[("labfs-all", 8)] > 4 * by[("labfs-all", 1)]
    assert by[("ext4", 8)] < 1.5 * by[("ext4", 1)]


# --- E7: schedulers -----------------------------------------------------------
def test_schedulers_hol_blocking_and_blkswitch_rescue():
    iso = schedulers.run_schedulers("linux-noop", colocated=False, l_nops=60, t_nops=50)
    noop = schedulers.run_schedulers("linux-noop", colocated=True, l_nops=60, t_nops=50)
    blk = schedulers.run_schedulers("linux-blk", colocated=True, l_nops=60, t_nops=50)
    lab_noop = schedulers.run_schedulers("lab-noop", colocated=True, l_nops=60, t_nops=50)
    lab_blk = schedulers.run_schedulers("lab-blk", colocated=True, l_nops=60, t_nops=50)
    # colocation destroys noop's tail latency (paper: 110us -> 945us mean)
    assert noop["l_lat_p99_us"] > 5 * iso["l_lat_p99_us"]
    # blk-switch restores QoS
    assert blk["l_lat_p99_us"] < noop["l_lat_p99_us"] / 3
    assert lab_blk["l_lat_p99_us"] < lab_noop["l_lat_p99_us"] / 3


# --- E8: PFS ------------------------------------------------------------------
def test_pfs_gain_grows_with_device_speed():
    from repro.workloads.vpic import VpicConfig

    cfg = VpicConfig(nprocs=4, timesteps=2, particles_per_proc=2048)

    def gain(device):
        ext4 = pfs_eval.run_pfs(mds_backend="ext4", data_device=device, cfg=cfg)
        lab = pfs_eval.run_pfs(mds_backend="labfs-min", data_device=device, cfg=cfg)
        return ext4["vpic_s"] / lab["vpic_s"] - 1

    g_hdd = gain("hdd")
    g_nvme = gain("nvme")
    assert g_nvme > 0.04       # paper: 6-12% on fast devices
    assert g_nvme > g_hdd + 0.03  # the benefit grows as I/O cost shrinks


# --- E9: LABIOS -----------------------------------------------------------------
def test_labios_kvs_beats_filesystems():
    rows = labios_eval.sweep_labios(devices=("nvme",), nlabels=80)
    mbps = {r["backend"]: r["MBps"] for r in rows}
    best_fs = max(mbps["ext4"], mbps["xfs"], mbps["f2fs"])
    # paper: filesystems degrade >= 12% vs LabKVS
    assert mbps["labkvs-all"] > 1.12 * best_fs
    # relaxing access control buys more (paper: up to +16%)
    assert mbps["labkvs-d"] > mbps["labkvs-min"] > mbps["labkvs-all"]


# --- E10: Filebench ----------------------------------------------------------------
def test_filebench_lab_wins_metadata_workloads():
    # 4 threads: enough concurrency for the kernel journal contention the
    # paper's 16-thread runs exhibit
    rows = filebench_eval.sweep_filebench(
        personalities=("varmail", "webproxy"), nthreads=4, loops=3
    )
    by = {(r["config"], r["personality"]): r["kops_per_sec"] for r in rows}
    for wl in ("varmail", "webproxy"):
        best_kernel = max(by[(fs, wl)] for fs in ("ext4", "xfs", "f2fs"))
        assert by[("lab-min", wl)] > best_kernel


def test_filebench_fileserver_is_the_exception():
    rows = filebench_eval.sweep_filebench(
        personalities=("fileserver",), configs=("ext4", "lab-min"), nthreads=2, loops=3
    )
    by = {r["config"]: r["kops_per_sec"] for r in rows}
    # bandwidth-bound: LabFS does not win here (paper: parity/exception)
    assert by["lab-min"] < 1.2 * by["ext4"]


# --- report helpers ------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_normalize_best_is_one():
    n = normalize({"x": 50.0, "y": 100.0})
    assert n == {"x": 0.5, "y": 1.0}
