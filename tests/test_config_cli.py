"""Satellite seams: the typed REPRO_* config accessor, the shared
report-CLI formatter, named QP owners, and sorted override errors."""

import json

import pytest

from repro.config import (
    FAULTS_ENV_VAR,
    SANITIZE_ENV_VAR,
    TELEMETRY_ENV_VAR,
    ReproConfig,
    current,
)


# ----------------------------------------------------------------------
# repro.config
# ----------------------------------------------------------------------
class TestReproConfig:
    def test_unset_empty_and_zero_mean_off(self):
        for env in ({}, {SANITIZE_ENV_VAR: "", TELEMETRY_ENV_VAR: "0",
                      FAULTS_ENV_VAR: "0"}):
            cfg = ReproConfig.from_env(env)
            assert cfg == ReproConfig(sanitize=False, telemetry=False,
                                      faults=None)

    def test_any_other_value_arms_the_flag_seams(self):
        cfg = ReproConfig.from_env({SANITIZE_ENV_VAR: "1",
                                    TELEMETRY_ENV_VAR: "yes"})
        assert cfg.sanitize and cfg.telemetry

    def test_faults_text_passes_through_verbatim(self):
        text = "power_cut:at=5ms,restart_after=10ms"
        assert ReproConfig.from_env({FAULTS_ENV_VAR: text}).faults == text

    def test_current_reads_the_process_environment(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
        cfg = current()
        assert cfg.sanitize and not cfg.telemetry

    def test_legacy_helpers_delegate_to_config(self, monkeypatch):
        from repro.faults.plan import plan_from_env
        from repro.obs.telemetry import maybe_attach as tel_attach
        from repro.sim import Environment

        monkeypatch.setenv(FAULTS_ENV_VAR, "power_cut:at=1ms")
        plan = plan_from_env()
        assert plan is not None and plan.specs[0].kind == "power_cut"
        monkeypatch.setenv(FAULTS_ENV_VAR, "0")
        assert plan_from_env() is None
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "0")
        assert tel_attach(Environment()) is None


# ----------------------------------------------------------------------
# shared report CLI
# ----------------------------------------------------------------------
class TestSharedReportCli:
    def _parse(self, argv):
        import argparse

        from repro.cli import add_output_flags

        p = argparse.ArgumentParser()
        add_output_flags(p)
        return p.parse_args(argv)

    def _report(self):
        from repro.cli import Report

        return Report(text="the table", data={"metric": 1},
                      csv_headers=("metric", "value"),
                      csv_rows=[("metric", 1)])

    def test_plain_invocation_prints_text(self, capsys):
        from repro.cli import EXIT_OK, emit

        assert emit(self._parse([]), self._report()) == EXIT_OK
        assert capsys.readouterr().out.strip() == "the table"

    def test_bare_json_prints_json_and_suppresses_text(self, capsys):
        from repro.cli import emit

        emit(self._parse(["--json"]), self._report())
        out = capsys.readouterr().out
        assert json.loads(out) == {"metric": 1}
        assert "the table" not in out

    def test_json_path_writes_file_and_keeps_text(self, capsys, tmp_path):
        from repro.cli import emit

        dest = tmp_path / "r.json"
        emit(self._parse(["--json", str(dest)]), self._report())
        assert json.loads(dest.read_text()) == {"metric": 1}
        out = capsys.readouterr().out
        assert "the table" in out and str(dest) in out

    def test_csv_output(self, capsys, tmp_path):
        from repro.cli import emit

        emit(self._parse(["--csv"]), self._report())
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "metric,value"
        dest = tmp_path / "r.csv"
        emit(self._parse(["--csv", str(dest)]), self._report())
        assert dest.read_text().splitlines()[1] == "metric,1"

    def test_out_writes_the_text_report(self, tmp_path):
        from repro.cli import emit

        dest = tmp_path / "report.txt"
        emit(self._parse(["--out", str(dest)]), self._report())
        assert dest.read_text().rstrip() == "the table"

    def test_all_three_report_mains_share_the_flags(self):
        """The unified seam: every report CLI accepts the same output
        flags (argparse exits 2 on a usage error, the historical code)."""
        from repro.faults import report as faults_report
        from repro.obs import report as obs_report
        from repro.traffic import report as traffic_report

        for mod in (obs_report, faults_report, traffic_report):
            with pytest.raises(SystemExit) as exc:
                mod.main(["--definitely-not-a-flag"])
            assert exc.value.code == 2

    def test_row_extractors_are_importable_and_shaped(self):
        from repro.obs.report import CSV_HEADERS as OBS_HEADERS
        from repro.obs.report import breakdown_rows
        from repro.traffic.report import CSV_HEADERS as TRAFFIC_HEADERS
        from repro.traffic.report import slo_rows

        from repro.obs import PHASES

        phase = {"total_ns": 4, "mean_ns": 2.0, "fraction": 0.4}
        bd = {"count": 2, "phases": {p: dict(phase) for p in PHASES},
              "e2e": {"total_ns": 10, "mean_ns": 5.0}}
        rows = breakdown_rows({"cfg": bd})
        assert len(rows) == len(PHASES) + 1  # + the e2e summary row
        assert all(len(r) == len(OBS_HEADERS) for r in rows)
        assert slo_rows({"tenants": {}}) == []
        assert len(TRAFFIC_HEADERS) == 10


# ----------------------------------------------------------------------
# named QP owners + sorted device-override errors
# ----------------------------------------------------------------------
class TestDiagnosticsNaming:
    def test_qp_owner_tag_names_the_endpoint(self):
        from repro.errors import IpcError
        from repro.ipc.queue_pair import Completion, QueuePair
        from repro.sim import Environment

        qp = QueuePair(Environment(), owner="fabric:n0->n1")
        assert qp.owner_tag == f"QP {qp.qid} (fabric:n0->n1)"
        with pytest.raises(IpcError, match=r"fabric:n0->n1"):
            qp.complete(Completion(object()))

    def test_unnamed_qp_keeps_bare_tag(self):
        from repro.ipc.queue_pair import QueuePair
        from repro.sim import Environment

        qp = QueuePair(Environment())
        assert qp.owner_tag == f"QP {qp.qid}"

    def test_device_override_error_lists_valid_keys_sorted(self):
        from repro.devices.profiles import make_device
        from repro.errors import LabStorError
        from repro.sim import Environment

        with pytest.raises(LabStorError) as exc:
            make_device(Environment(), "nvme", not_a_knob=1)
        msg = str(exc.value)
        assert "not_a_knob" in msg
        listed = msg.split("valid keys: ", 1)[1]
        keys = [k.strip(" '[]") for k in listed.split(",")]
        assert keys == sorted(keys)

    def test_device_spec_rejects_unknown_keys_too(self):
        from repro.devices.profiles import DeviceSpec
        from repro.errors import LabStorError

        with pytest.raises(LabStorError, match="valid keys"):
            DeviceSpec("nvme", bogus=3)
