"""Tests for repro.units."""

from repro.units import (
    GiB,
    KiB,
    MiB,
    fmt_size,
    fmt_time,
    gib,
    kib,
    mib,
    msec,
    sec,
    to_msec,
    to_sec,
    to_usec,
    usec,
)


def test_time_conversions_roundtrip():
    assert usec(1.5) == 1500
    assert msec(2) == 2_000_000
    assert sec(0.001) == 1_000_000
    assert to_usec(1500) == 1.5
    assert to_msec(2_000_000) == 2.0
    assert to_sec(10**9) == 1.0


def test_size_helpers():
    assert kib(4) == 4 * KiB == 4096
    assert mib(1) == MiB
    assert gib(2) == 2 * GiB


def test_fmt_size():
    assert fmt_size(512) == "512B"
    assert fmt_size(4096) == "4.0KiB"
    assert fmt_size(3 * MiB) == "3.0MiB"
    assert fmt_size(5 * GiB) == "5.0GiB"


def test_fmt_time():
    assert fmt_time(500) == "500ns"
    assert fmt_time(1500) == "1.50us"
    assert fmt_time(2_500_000) == "2.50ms"
    assert fmt_time(3 * 10**9) == "3.000s"
