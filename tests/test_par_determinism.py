"""Shard-count determinism for the conservative parallel runner.

The contract under test: a par program's merged trace digest and its
virtual results are pure functions of (program, seed) — the shard count
only moves wall clock.  ``shards=1`` (all node-worlds co-resident, no
forks) is the baseline; forked runs must match it byte-for-byte.
"""

import pytest

from repro.cluster import cluster
from repro.cluster.par import ClusterParProgram, E14ParProgram, PAR_SCENARIOS
from repro.errors import LabStorError
from repro.sim import Environment
from repro.sim.core import SimulationError
from repro.sim.par import merge_digest, run_program
from repro.units import msec


@pytest.mark.parametrize("scenario", ["cluster", "control"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_merged_digest_shard_invariant(scenario, seed):
    digests = {}
    events = {}
    for shards in (1, 2, 4):
        res = run_program(PAR_SCENARIOS[scenario](seed), shards=shards,
                          trace=True)
        digests[shards] = res.digest
        events[shards] = res.merged_events
    assert events[1] > 0, "scenario produced no trace events"
    assert events[2] == events[1] and events[4] == events[1]
    assert digests[2] == digests[1], (
        f"{scenario} seed={seed}: shards=2 digest diverged from serial")
    assert digests[4] == digests[1], (
        f"{scenario} seed={seed}: shards=4 digest diverged from serial")


def test_power_cut_nacks_across_barrier():
    """The fault case: node ``b`` is power-cut at 3 ms — mid-window, with
    replica ops in flight — so its executor answers with NACK messages
    that cross a barrier before completing the initiator's NIC QP.  The
    whole outcome (failover hits, NACK counts, conservation) must be
    identical serial vs. forked."""
    serial = run_program(ClusterParProgram(0), shards=1, trace=False)
    forked = run_program(ClusterParProgram(0), shards=4, trace=False)
    assert serial.results == forked.results
    assert serial.reduced == forked.reduced
    r = forked.reduced
    assert r["hits"] == ClusterParProgram.nkeys
    assert r["failovers"] > 0, "power cut never forced a failover"
    assert r["nacks"] > 0, "no NACK ever crossed a barrier"
    assert not forked.results["b"]["online"], "power cut never fired"


def test_e14_program_digest_and_results_shard_invariant():
    base = None
    for shards in (1, 2, 4):
        res = run_program(
            E14ParProgram(3, nnodes=4, nclients=24, ops_per_client=6),
            shards=shards, trace=True)
        snap = (res.digest, res.merged_events, res.reduced["kops_s"],
                res.reduced["remote_calls"])
        if base is None:
            base = snap
        else:
            assert snap == base, f"shards={shards} diverged from serial"


def test_until_window_semantics():
    env = Environment()
    with pytest.raises(SimulationError):
        env.run(until=5, until_window=5)  # mutually exclusive
    with pytest.raises(SimulationError):
        env.run(until_window=0)  # window must lie strictly ahead
    env.run(until_window=10)  # empty env: nothing to do, clock untouched
    assert env.now == 0

    fired = []
    env2 = Environment()

    def gen():
        yield env2.timeout(4)
        fired.append(env2.now)
        yield env2.timeout(4)
        fired.append(env2.now)

    env2.process(gen())
    env2.run(until_window=5)
    assert fired == [4]  # t=8 event lies beyond the window
    assert env2.peek() == 8
    env2.run(until_window=9)
    assert fired == [4, 8]


def _builder_handle(shards):
    return (
        cluster(seed=7)
        .node("n0").stack("kvs::/meta").kvs(variant="min").device("nvme")
        .node("n1")
        .node("n2", failure_domain="rack-b")
        .build(shards=shards)
    )


def _builder_setup(view):
    view.skvs = view.shard_kvs("kvs::/t", replicas=2, timeout_ns=int(msec(1)))


def _builder_drivers(view):
    if view.node_name != "n0":
        return []

    def go():
        yield view.env.timeout(int(msec(1)))
        hits = 0
        for i in range(12):
            yield from view.skvs.put(f"k{i}", bytes([i]) * 64)
        for i in range(12):
            if (yield from view.skvs.get(f"k{i}")) == bytes([i]) * 64:
                hits += 1
        view.driver_out = {"hits": hits}

    return [("demo", go())]


def _builder_finish(view):
    out = dict(getattr(view, "driver_out", {}))
    out["node"] = view.node_name
    stats = view.stats()
    out["remote_calls"] = sum(
        r["remote_calls"] for r in stats["routes"].values())
    view.shutdown()
    return out


def test_builder_build_shards_handle_shard_invariant():
    """The fluent front door: ``cluster(...)...build(shards=N)`` freezes
    the recorded topology (including a declared stack, replayed inside
    each shard world) and runs byte-identically at every shard count."""
    base = None
    for shards in (1, 2, 3):
        handle = _builder_handle(shards)
        assert handle.shards == shards
        assert handle.lookahead_ns() is not None
        res = handle.run(drivers=_builder_drivers, setup=_builder_setup,
                         finish=_builder_finish, trace=True)
        snap = (res.digest, res.merged_events, res.results)
        if base is None:
            base = snap
        else:
            assert snap == base, f"builder handle diverged at shards={shards}"
    assert base[2]["n0"]["hits"] == 12
    assert base[2]["n0"]["remote_calls"] > 0


def test_builder_build_default_path_unchanged():
    cl = (cluster(seed=3)
          .node("a").stack("kvs::/x").kvs(variant="min").device("nvme")
          .node("b")
          .build())
    assert sorted(cl.nodes) == ["a", "b"]
    assert cl._built
    cl.shutdown()


def test_builder_build_shards_rejects_bad_args():
    with pytest.raises(LabStorError):
        cluster(seed=0).node("a").node("b").build(shards=0)
    env = Environment()
    with pytest.raises(LabStorError):
        cluster(seed=0, env=env).node("a").node("b").build(shards=2)


def test_merge_digest_order_is_stream_independent():
    streams_a = {"n0": [(5, 1, "x"), (7, 2, "y")], "n1": [(5, 1, "z")]}
    streams_b = {"n1": [(5, 1, "z")], "n0": [(5, 1, "x"), (7, 2, "y")]}
    assert merge_digest(streams_a) == merge_digest(streams_b)
