"""Unit + property tests for LabFS's per-worker block allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfSpaceError
from repro.mods.labfs.alloc import PerWorkerBlockAllocator


def test_blocks_divided_evenly():
    a = PerWorkerBlockAllocator(100, 4)
    for w in range(4):
        assert a.free_count(w) == 25


def test_alloc_returns_unique_blocks():
    a = PerWorkerBlockAllocator(64, 4)
    blocks = [a.alloc(w % 4) for w in range(64)]
    assert len(set(blocks)) == 64
    assert a.free_count() == 0


def test_base_block_offsets_all_allocations():
    a = PerWorkerBlockAllocator(10, 2, base_block=100)
    blocks = [a.alloc(0) for _ in range(5)]
    assert all(b >= 100 for b in blocks)


def test_free_and_realloc():
    a = PerWorkerBlockAllocator(10, 1)
    b = a.alloc(0)
    a.free(b, 0)
    assert a.alloc(0) == b  # freed block is reused first


def test_double_free_rejected():
    a = PerWorkerBlockAllocator(10, 1)
    b = a.alloc(0)
    a.free(b, 0)
    with pytest.raises(OutOfSpaceError, match="double free"):
        a.free(b, 0)


def test_stealing_when_shard_dry():
    a = PerWorkerBlockAllocator(40, 2, steal_blocks=4)
    for _ in range(20):
        a.alloc(0)
    # shard 0 dry; next alloc steals from shard 1
    b = a.alloc(0)
    assert b is not None
    assert a.steals == 1
    assert a.free_count(1) < 20


def test_exhaustion_raises():
    a = PerWorkerBlockAllocator(4, 2)
    for i in range(4):
        a.alloc(i % 2)
    with pytest.raises(OutOfSpaceError, match="no free blocks"):
        a.alloc(0)


def test_unknown_worker_hashes_onto_shard():
    a = PerWorkerBlockAllocator(10, 2)
    b = a.alloc(worker_id=99)  # not a known shard key
    assert b is not None


def test_add_worker_steals_from_everyone():
    a = PerWorkerBlockAllocator(1000, 2, steal_blocks=100)
    a.add_worker(7)
    assert a.free_count(7) == 200  # 100 from each existing shard
    assert a.free_count() == 1000


def test_remove_worker_redistributes():
    a = PerWorkerBlockAllocator(100, 4)
    before = a.free_count()
    a.remove_worker(3)
    assert a.nworkers == 3
    assert a.free_count() == before  # no blocks lost


def test_remove_last_worker_keeps_blocks():
    a = PerWorkerBlockAllocator(10, 1)
    a.remove_worker(0)
    assert a.free_count() == 10
    assert a.alloc(0) is not None


def test_invalid_construction():
    with pytest.raises(OutOfSpaceError):
        PerWorkerBlockAllocator(0, 1)
    with pytest.raises(OutOfSpaceError):
        PerWorkerBlockAllocator(10, 0)


@settings(max_examples=50, deadline=None)
@given(
    nblocks=st.integers(8, 200),
    nworkers=st.integers(1, 8),
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 7)), min_size=1, max_size=100
    ),
)
def test_property_no_double_allocation_and_conservation(nblocks, nworkers, ops):
    """Invariants: a block is never handed out twice while allocated, and
    allocated + free == total at all times."""
    a = PerWorkerBlockAllocator(nblocks, nworkers)
    held: list[int] = []
    for kind, w in ops:
        if kind == "alloc":
            try:
                b = a.alloc(w)
            except OutOfSpaceError:
                assert a.free_count() == 0
                continue
            assert b not in held
            held.append(b)
        elif held:
            a.free(held.pop(), w)
        assert a.allocated_count() + a.free_count() == nblocks
        assert a.allocated_count() == len(held)


@settings(max_examples=30, deadline=None)
@given(
    resizes=st.lists(st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 9)),
                     min_size=1, max_size=12)
)
def test_property_resizing_conserves_blocks(resizes):
    a = PerWorkerBlockAllocator(500, 4, steal_blocks=16)
    total = a.free_count()
    for kind, w in resizes:
        if kind == "add":
            a.add_worker(100 + w)
        else:
            a.remove_worker(w)
        assert a.free_count() == total
