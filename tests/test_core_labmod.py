"""Tests for LabMod base machinery, registry, LabStack and Namespace."""

import pytest

from repro.core import (
    LabMod,
    LabRequest,
    LabStack,
    ModContext,
    ModuleRegistry,
    NodeSpec,
    StackNamespace,
    StackRules,
    StackSpec,
)
from repro.core.labmod import ExecContext
from repro.errors import LabStorError, ModuleNotFound, StackValidationError
from repro.sim import Environment, Tracer
from repro.kernel import DEFAULT_COST


class SourceMod(LabMod):
    mod_type = "test"
    accepts = ("msg.",)
    emits = ("msg.",)

    def handle(self, req, x):
        yield from x.work(10, span="source")
        self.processed += 1
        return (yield from self.forward(req, x))


class SinkMod(LabMod):
    mod_type = "test"
    accepts = ("msg.",)
    emits = ()

    def __init__(self, uuid, ctx):
        super().__init__(uuid, ctx)
        self.seen = []

    def handle(self, req, x):
        yield from x.work(5, span="sink")
        self.seen.append(req.payload.get("value"))
        self.processed += 1
        return f"sunk:{req.payload.get('value')}"

    def state_update(self, old):
        super().state_update(old)
        if isinstance(old, SinkMod):
            self.seen = list(old.seen)


class IncompatibleMod(LabMod):
    mod_type = "test"
    accepts = ("blk.",)
    emits = ()

    def handle(self, req, x):
        yield from x.work(1)


def make_ctx():
    env = Environment()
    return env, ModContext(env, DEFAULT_COST, Tracer())


def make_registry():
    env, ctx = make_ctx()
    reg = ModuleRegistry(ctx)
    reg.mount_repo("test", {"SourceMod": SourceMod, "SinkMod": SinkMod,
                            "IncompatibleMod": IncompatibleMod})
    return env, reg


# --- registry -------------------------------------------------------------
def test_registry_instantiate_once_per_uuid():
    env, reg = make_registry()
    a = reg.instantiate("SourceMod", "m0")
    b = reg.instantiate("SourceMod", "m0")
    assert a is b
    assert "m0" in reg


def test_registry_unknown_name():
    env, reg = make_registry()
    with pytest.raises(ModuleNotFound):
        reg.instantiate("NoSuchMod", "x")


def test_registry_unknown_uuid():
    env, reg = make_registry()
    with pytest.raises(ModuleNotFound):
        reg.get("ghost")


def test_repo_unmount_removes_classes():
    env, reg = make_registry()
    reg.unmount_repo("test")
    with pytest.raises(ModuleNotFound):
        reg.resolve_class("SourceMod")


def test_repo_per_user_limit():
    env, ctx = make_ctx()
    reg = ModuleRegistry(ctx, max_repos_per_user=1)
    reg.mount_repo("a", {}, owner_uid=7)
    with pytest.raises(LabStorError, match="max repos"):
        reg.mount_repo("b", {}, owner_uid=7)
    reg.mount_repo("c", {}, owner_uid=8)  # different user ok


def test_hot_swap_preserves_wiring_and_state():
    env, reg = make_registry()
    src = reg.instantiate("SourceMod", "src")
    sink = reg.instantiate("SinkMod", "sink")
    src.next = [sink]
    sink.seen.append("before")

    class SinkModV2(SinkMod):
        pass

    new_sink = reg.hot_swap("sink", SinkModV2)
    assert reg.get("sink") is new_sink
    assert src.next == [new_sink]
    assert new_sink.seen == ["before"]
    assert new_sink.version == 2


# --- stack validation ------------------------------------------------------
def _spec(nodes, mount="t::/x", exec_mode="async"):
    return StackSpec(mount=mount, nodes=nodes, rules=StackRules(exec_mode=exec_mode))


def test_stack_builds_and_wires_linear_chain():
    env, reg = make_registry()
    spec = StackSpec.linear("t::/x", [("SourceMod", "a"), ("SinkMod", "b")])
    stack = LabStack(spec, reg)
    assert stack.entry.uuid == "a"
    assert stack.mods["a"].next == [stack.mods["b"]]


def test_stack_rejects_cycle():
    env, reg = make_registry()
    nodes = [
        NodeSpec("SourceMod", "a", outputs=["b"]),
        NodeSpec("SourceMod", "b", outputs=["a"]),
    ]
    with pytest.raises(StackValidationError, match="cycle"):
        LabStack(_spec(nodes), reg)


def test_stack_rejects_unknown_output():
    env, reg = make_registry()
    nodes = [NodeSpec("SourceMod", "a", outputs=["ghost"])]
    with pytest.raises(StackValidationError, match="unknown uuid"):
        LabStack(_spec(nodes), reg)


def test_stack_rejects_duplicate_uuid():
    env, reg = make_registry()
    nodes = [NodeSpec("SourceMod", "a"), NodeSpec("SinkMod", "a")]
    with pytest.raises(StackValidationError, match="duplicate"):
        LabStack(_spec(nodes), reg)


def test_stack_rejects_incompatible_edge():
    env, reg = make_registry()
    nodes = [
        NodeSpec("SourceMod", "a", outputs=["b"]),   # emits msg.
        NodeSpec("IncompatibleMod", "b"),            # accepts blk.
    ]
    with pytest.raises(StackValidationError, match="incompatible"):
        LabStack(_spec(nodes), reg)


def test_stack_rejects_empty_and_too_long():
    env, reg = make_registry()
    with pytest.raises(StackValidationError, match="no LabMods"):
        LabStack(_spec([]), reg)
    chain = [("SourceMod", f"n{i}") for i in range(LabStack.MAX_LENGTH)] + [("SinkMod", "sink")]
    with pytest.raises(StackValidationError, match="max length"):
        LabStack(StackSpec.linear("t::/y", chain), reg)


def test_stack_rejects_bad_exec_mode():
    env, reg = make_registry()
    nodes = [NodeSpec("SinkMod", "a")]
    with pytest.raises(StackValidationError, match="exec_mode"):
        LabStack(_spec(nodes, exec_mode="warp"), reg)


def test_stack_entry_requires_unique_root():
    env, reg = make_registry()
    nodes = [NodeSpec("SourceMod", "a", outputs=["c"]),
             NodeSpec("SourceMod", "b", outputs=["c"]),
             NodeSpec("SinkMod", "c")]
    stack = LabStack(_spec(nodes), reg)
    with pytest.raises(StackValidationError, match="exactly one entry"):
        _ = stack.entry


def test_stack_execution_end_to_end():
    env, reg = make_registry()
    spec = StackSpec.linear("t::/x", [("SourceMod", "a"), ("SinkMod", "b")])
    stack = LabStack(spec, reg)
    x = ExecContext(env, Tracer())

    def proc():
        return (yield from stack.entry.handle(LabRequest(op="msg.send", payload={"value": 7}), x))

    assert env.run(env.process(proc())) == "sunk:7"
    assert stack.mods["b"].seen == [7]


def test_modify_stack_insert_and_remove():
    env, reg = make_registry()
    spec = StackSpec.linear("t::/x", [("SourceMod", "a"), ("SinkMod", "z")])
    stack = LabStack(spec, reg)
    stack.insert_after("a", NodeSpec("SourceMod", "mid"))
    assert [n.uuid for n in stack.spec.nodes] == ["a", "mid", "z"]
    assert stack.mods["a"].next[0].uuid == "mid"
    stack.remove_node("mid")
    assert [n.uuid for n in stack.spec.nodes] == ["a", "z"]
    assert stack.mods["a"].next[0].uuid == "z"


def test_modify_stack_bad_anchor():
    env, reg = make_registry()
    stack = LabStack(StackSpec.linear("t::/x", [("SinkMod", "a")]), reg)
    with pytest.raises(StackValidationError):
        stack.insert_after("ghost", NodeSpec("SourceMod", "m"))
    with pytest.raises(StackValidationError):
        stack.remove_node("ghost")


def test_shared_uuid_across_stacks_shares_instance():
    """Two stacks naming the same UUID share one LabMod instance."""
    env, reg = make_registry()
    s1 = LabStack(StackSpec.linear("t::/a", [("SourceMod", "src1"), ("SinkMod", "shared")]), reg)
    s2 = LabStack(StackSpec.linear("t::/b", [("SourceMod", "src2"), ("SinkMod", "shared")]), reg)
    assert s1.mods["shared"] is s2.mods["shared"]


# --- namespace ----------------------------------------------------------
def test_namespace_exact_and_prefix_resolution():
    env, reg = make_registry()
    ns = StackNamespace()
    stack = LabStack(StackSpec.linear("fs::/b", [("SinkMod", "s1")]), reg)
    ns.register(stack)
    got, rem = ns.resolve("fs::/b/hi.txt")
    assert got is stack
    assert rem == "/hi.txt"
    got2, rem2 = ns.resolve("fs::/b")
    assert got2 is stack
    assert rem2 == "/"


def test_namespace_longest_prefix_wins():
    env, reg = make_registry()
    ns = StackNamespace()
    outer = LabStack(StackSpec.linear("fs::/b", [("SinkMod", "o")]), reg)
    inner = LabStack(StackSpec.linear("fs::/b/deep", [("SinkMod", "i")]), reg)
    ns.register(outer)
    ns.register(inner)
    got, rem = ns.resolve("fs::/b/deep/file")
    assert got is inner
    assert rem == "/file"


def test_namespace_unresolved_path():
    ns = StackNamespace()
    with pytest.raises(LabStorError, match="no LabStack"):
        ns.resolve("fs::/nowhere/file")


def test_namespace_duplicate_mount_rejected():
    env, reg = make_registry()
    ns = StackNamespace()
    ns.register(LabStack(StackSpec.linear("fs::/b", [("SinkMod", "s1")]), reg))
    with pytest.raises(LabStorError, match="already"):
        ns.register(LabStack(StackSpec.linear("fs::/b", [("SinkMod", "s2")]), reg))


def test_namespace_unregister():
    env, reg = make_registry()
    ns = StackNamespace()
    stack = LabStack(StackSpec.linear("fs::/b", [("SinkMod", "s1")]), reg)
    sid = ns.register(stack)
    ns.unregister("fs::/b")
    assert "fs::/b" not in ns
    with pytest.raises(LabStorError):
        ns.get_by_id(sid)
