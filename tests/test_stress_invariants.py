"""Stress and property tests on cross-module invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicPolicy, LabRequest, RoundRobinPolicy, RuntimeConfig, WorkOrchestrator
from repro.ipc import Completion, QueuePair
from repro.kernel import Cpu
from repro.mods.generic_fs import GenericFS
from repro.mods.generic_kvs import GenericKVS
from repro.sim import Environment
from repro.system import LabStorSystem
from repro.units import msec


# --- orchestrator never loses or duplicates queues -----------------------------
@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["register", "unregister", "spawn", "retire", "rebalance"]),
        min_size=1,
        max_size=30,
    ),
    policy=st.sampled_from(["rr", "dynamic"]),
)
def test_property_rebalance_conserves_queues(ops, policy):
    env = Environment()
    cpu = Cpu(env, ncores=24)

    def executor(req, x):
        yield x.env.timeout(10)

    pol = RoundRobinPolicy() if policy == "rr" else DynamicPolicy()
    orch = WorkOrchestrator(env, cpu, executor, policy=pol, nworkers=2, max_workers=8)
    pool = [QueuePair(env) for _ in range(12)]
    registered: list = []
    for op in ops:
        if op == "register" and len(registered) < len(pool):
            qp = pool[len(registered)]
            registered.append(qp)
            orch.register_queue(qp)
        elif op == "unregister" and registered:
            orch.unregister_queue(registered.pop())
        elif op == "spawn" and orch.worker_count() < 8:
            orch.spawn_worker()
            orch.rebalance()
        elif op == "retire" and orch.worker_count() > 1:
            orch.decommission_worker(orch.workers[-1])
            orch.rebalance()
        else:
            orch.rebalance()
        # invariant: every registered queue is assigned to exactly one worker
        assigned = [q for w in orch.workers for q in w.assigned_qids()]
        assert sorted(assigned) == sorted(q.qid for q in registered)


# --- queue pair submission/completion conservation -------------------------------
@settings(max_examples=30, deadline=None)
@given(nreqs=st.integers(1, 40), workers=st.integers(1, 4))
def test_property_qp_conserves_requests(nreqs, workers):
    env = Environment()
    qp = QueuePair(env, ordered=False, pop_cost_ns=10)
    served = []

    def worker():
        while True:
            req = yield env.process(qp.pop_request())
            served.append(req)
            qp.complete(Completion(req))

    for _ in range(workers):
        env.process(worker())
    for i in range(nreqs):
        qp.submit(i)
    env.run(until=msec(10))
    assert sorted(served) == list(range(nreqs))
    assert qp.inflight == 0
    assert qp.submitted_total == qp.completed_total == nreqs


# --- concurrent LabFS writers never corrupt each other -----------------------------
@settings(max_examples=10, deadline=None)
@given(
    nthreads=st.integers(2, 5),
    writes=st.integers(2, 6),
    seed=st.integers(0, 100),
)
def test_property_concurrent_writers_isolated(nthreads, writes, seed):
    sys_ = LabStorSystem(seed=seed, devices=("nvme",),
                         config=RuntimeConfig(nworkers=4))
    sys_.mount_fs_stack("fs::/p", variant="min")
    results = {}

    def writer(tid):
        gfs = GenericFS(sys_.client())
        fd = yield from gfs.open(f"fs::/p/file{tid}", create=True)
        for i in range(writes):
            yield from gfs.write(fd, bytes([tid]) * 3000, offset=i * 3000)
        data = yield from gfs.read(fd, writes * 3000, offset=0)
        results[tid] = data

    procs = [sys_.process(writer(t)) for t in range(nthreads)]
    sys_.run(sys_.env.all_of(procs))
    for tid, data in results.items():
        assert data == bytes([tid]) * (writes * 3000)


def test_mixed_fs_and_kvs_traffic_shares_runtime():
    """FS and KVS stacks multiplex through the same Runtime and workers."""
    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=2))
    sys_.mount_fs_stack("fs::/m", variant="min")
    sys_.mount_kvs_stack("kvs::/m", variant="min")
    gfs = GenericFS(sys_.client())
    kvs = GenericKVS(sys_.client(), "kvs::/m")
    out = {}

    def fs_app():
        yield from gfs.write_file("fs::/m/doc", b"fs-bytes" * 500)
        out["fs"] = yield from gfs.read_file("fs::/m/doc")

    def kvs_app():
        yield from kvs.put("k", b"kvs-bytes" * 500)
        out["kvs"] = yield from kvs.get("k")

    sys_.run(sys_.env.all_of([sys_.process(fs_app()), sys_.process(kvs_app())]))
    assert out["fs"] == b"fs-bytes" * 500
    assert out["kvs"] == b"kvs-bytes" * 500


def test_upgrade_storm_under_traffic():
    """Many queued upgrades while requests flow: nothing lost, all applied."""
    from repro.core import StackSpec, UpgradeRequest
    from repro.mods.dummy import DummyMod, DummyModV2

    sys_ = LabStorSystem(devices=("nvme",),
                         config=RuntimeConfig(admin_poll_ns=msec(0.5)))
    stack = sys_.runtime.mount_stack(StackSpec.linear("msg::/d", [("DummyMod", "storm")]))
    client = sys_.client()
    replies = []

    def traffic():
        for i in range(60):
            r = yield from client.call(stack, LabRequest(op="msg.send", payload={"value": i}))
            replies.append(r["echo"])
            yield sys_.env.timeout(msec(1))

    def storm():
        for _ in range(6):
            sys_.runtime.modify_mods(UpgradeRequest(mod_name="DummyMod", new_cls=DummyModV2))
            yield sys_.env.timeout(msec(4))

    p = sys_.process(traffic())
    sys_.process(storm())
    sys_.run(p)
    assert replies == list(range(60))
    assert sys_.runtime.module_manager.upgrades_done == 6
    assert sys_.runtime.registry.get("storm").messages == 60


def test_crash_during_upgrade_storm_recovers():
    from repro.core import StackSpec
    from repro.mods.dummy import DummyMod

    sys_ = LabStorSystem(devices=("nvme",), config=RuntimeConfig(restart_wait_ns=msec(5)))
    stack = sys_.runtime.mount_stack(StackSpec.linear("msg::/c", [("DummyMod", "crashy")]))
    client = sys_.client()
    got = []

    def traffic():
        for i in range(10):
            r = yield from client.call(stack, LabRequest(op="msg.send", payload={"value": i}))
            got.append(r["echo"])

    def chaos():
        yield sys_.env.timeout(5_000)
        sys_.runtime.crash()
        yield sys_.env.timeout(msec(8))
        yield sys_.env.process(sys_.runtime.restart())

    p = sys_.process(traffic())
    sys_.process(chaos())
    sys_.run(p)
    assert got == list(range(10))
    assert sys_.runtime.crashes == 1
