"""Scheduler ordering guarantees + allocator-pooling stress.

The run loop in ``repro.sim.core`` splits same-time events across an
urgent lane, a due lane and the heap (see the Environment docstring);
these tests pin the (time, priority, insertion-id) total order across
every lane combination, including the externally-scheduled
URGENT-with-delay corner, and then push >=100k events through the
pooled allocator to prove the free lists cycle without changing
virtual-time behavior or leaking pending events.
"""

from repro.sim import NORMAL, URGENT, LOW, Environment, Sanitizer
from repro.sim.resources import Resource, Store


def _tagged(env: Environment, order: list, tag: str):
    ev = env.event()
    ev.callbacks.append(lambda e: order.append(tag))
    return ev


# ----------------------------------------------------------------------
# tie-breaking
# ----------------------------------------------------------------------
def test_same_time_priority_order():
    env = Environment()
    order: list[str] = []
    for tag, prio in (("low", LOW), ("normal", NORMAL), ("urgent", URGENT)):
        env._schedule(_tagged(env, order, tag), 10, prio)
    env.run()
    assert order == ["urgent", "normal", "low"]
    assert env.now == 10


def test_same_priority_fires_in_insertion_order():
    env = Environment()
    order: list[str] = []
    # urgent lane FIFO
    for tag in ("u1", "u2", "u3"):
        _tagged(env, order, tag).succeed(priority=URGENT)
    # due lane FIFO
    for tag in ("n1", "n2"):
        _tagged(env, order, tag).succeed()
    env.run()
    assert order == ["u1", "u2", "u3", "n1", "n2"]


def test_urgent_with_delay_beats_same_time_urgent_lane():
    """The heap-resident URGENT corner: an URGENT event scheduled with a
    positive delay carries an older insertion id than any urgent-lane
    entry created at its firing time, so it must pop first even though
    the lane normally wins."""
    env = Environment()
    order: list[str] = []
    z = _tagged(env, order, "z")
    env._schedule(z, 10, URGENT)
    a = _tagged(env, order, "a")
    env._schedule(a, 10, URGENT)
    b = _tagged(env, order, "b")
    # z fires first at t=10 (oldest eid) and pushes b onto the urgent
    # lane; a is still heap-resident with a smaller eid than b
    z.callbacks.append(lambda e: b.succeed(priority=URGENT))
    env.run()
    assert order == ["z", "a", "b"]


def test_due_lane_loses_same_time_tie_to_heap():
    """A NORMAL event that waited in the heap (scheduled earlier, with a
    delay) outranks a NORMAL delay-0 event created at its firing time:
    eids grow monotonically with virtual time."""
    env = Environment()
    order: list[str] = []
    w = _tagged(env, order, "w")
    env._schedule(w, 10, URGENT)
    x = _tagged(env, order, "x")
    env._schedule(x, 10, NORMAL)
    d = _tagged(env, order, "d")
    w.callbacks.append(lambda e: d.succeed())  # NORMAL -> due lane at t=10
    env.run()
    assert order == ["w", "x", "d"]


def test_step_matches_run_ordering():
    """step() must walk the exact order run() does (shared invariant)."""

    def build():
        env = Environment()
        order: list[str] = []
        env._schedule(_tagged(env, order, "a"), 5, NORMAL)
        env._schedule(_tagged(env, order, "b"), 5, URGENT)
        c = _tagged(env, order, "c")
        c.succeed(priority=URGENT)
        _tagged(env, order, "d").succeed()
        return env, order

    env, via_run = build()
    env.run()
    env2, via_step = build()
    while env2._heap or env2._urgent or env2._due:
        env2.step()
    assert via_run == via_step == ["c", "d", "b", "a"]


# ----------------------------------------------------------------------
# pooled-allocator stress
# ----------------------------------------------------------------------
def _churn(env: Environment, loops: int):
    """A workload that cycles every free list: Timeouts, Events (store
    put/get), Conditions (any_of), Processes (nested spawns), Initialize
    (one per process) and resource _Requests."""
    res = Resource(env, capacity=2)
    store = Store(env)

    def sub():
        yield env.timeout(2)

    def worker(wid: int):
        for j in range(loops):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)
            yield store.put((wid, j))
            yield store.get()
            if j % 8 == 0:
                yield env.any_of([env.timeout(3), env.timeout(4)])
            if j % 16 == 0:
                yield env.process(sub())
            yield env.timeout(1)

    return env.all_of([env.process(worker(i)) for i in range(8)])


def test_pooled_stress_100k_events_no_leaks():
    env = Environment()
    env.run(_churn(env, 2400))
    assert env._eid >= 100_000, f"stress too small: {env._eid} events"
    # the free lists actually cycled
    assert env.pool_returned > 1000
    assert env.pool_reused > 1000
    # nothing left scheduled: every event was consumed
    assert not env._heap and not env._urgent and not env._due
    now_pooled = env.now

    # identical run under the sanitizer: audit mode disables pooling, so
    # matching virtual time proves recycling never changed behavior, and
    # the teardown audit proves no event leaked mid-flight
    env2 = Environment()
    san = Sanitizer(strict=False).install(env2)
    env2.run(_churn(env2, 2400))
    report = san.finish()
    assert report["violations"] == []
    assert env2.now == now_pooled
    assert env2.pool_reused == 0  # audit really had pooling off
