"""Every shipped example must run clean end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something
