"""Tests for the simulation sanitizer and determinism checker.

Each detector is exercised with the violation class that the satellite
bugfixes in this PR would have produced: stranded queues and stale worker
ids (orchestrator scale-in), conservation drift (queue-pair accounting),
dropped waiters (run-until-event stop path), and swallowed late failures
(any_of sub-events).
"""

import random

import pytest

from repro.core import LabRequest, RoundRobinPolicy, WorkOrchestrator
from repro.errors import SanitizerError
from repro.ipc import QueuePair
from repro.kernel import Cpu
from repro.sim import Environment, Sanitizer
from repro.sim.check import AuditRun, run_scenario


def echo_executor(req, x):
    yield from x.work(1000, span="exec")
    return "done"


# --- event-lifecycle auditing ------------------------------------------
def test_leaked_event_with_waiting_process_detected():
    env = Environment()
    san = Sanitizer(strict=False).install(env)
    ev = env.event()  # nobody will ever trigger this

    def waiter():
        yield ev

    env.process(waiter())
    env.run()  # heap runs dry with the process still parked
    report = san.finish()
    assert any("leaked event" in v for v in report["violations"])


def test_daemon_process_waits_are_not_leaks():
    env = Environment()
    san = Sanitizer(strict=False).install(env)
    ev = env.event()

    def poller():
        yield ev

    env.process(poller(), daemon=True)
    env.run()
    assert san.finish()["violations"] == []


def test_swallowed_failure_detected_at_teardown():
    env = Environment()
    san = Sanitizer(strict=False).install(env)
    ev = env.event()
    ev.fail(RuntimeError("dropped on the floor"))
    # the run ends before the failure is processed or defused
    report = san.finish()
    assert any("swallowed" in v for v in report["violations"])


def test_double_resume_of_dead_process_detected():
    env = Environment()
    Sanitizer().install(env)
    ev = env.event()

    def waiter():
        yield ev

    p = env.process(waiter())
    env.run(until=1)  # let the process park on ev
    ev.callbacks.append(p._resume)  # simulate a buggy double subscription
    ev.succeed()
    with pytest.raises(SanitizerError, match="double resume"):
        env.run()


# --- conservation invariants -------------------------------------------
def test_qp_conservation_violation_detected():
    env = Environment()
    Sanitizer().install(env)
    qp = QueuePair(env)

    def proc():
        yield qp.submit(LabRequest(op="x"))

    env.run(env.process(proc()))
    qp.inflight = 5  # corrupt the books
    with pytest.raises(SanitizerError, match="conservation broken"):
        qp.try_pop_request()


def test_qp_est_queued_must_drain_to_zero():
    env = Environment()
    Sanitizer().install(env)
    qp = QueuePair(env)

    def proc():
        yield qp.submit(LabRequest(op="x", est_ns=1000))

    env.run(env.process(proc()))
    assert qp.try_pop_request() is not None
    assert qp.est_queued_ns == 0
    qp.est_queued_ns = 7  # corrupt: phantom queued work on an empty SQ
    from repro.ipc import Completion

    with pytest.raises(SanitizerError, match="SQ is empty"):
        qp.complete(Completion(None))


def test_orchestrator_stale_prev_busy_detected():
    env = Environment()
    Sanitizer().install(env)
    cpu = Cpu(env, ncores=4)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=2)
    orch._prev_busy[999] = 0  # a retired worker's entry was never dropped
    with pytest.raises(SanitizerError, match="stale worker ids"):
        orch.rebalance()


def test_orchestrator_orphaned_queue_detected():
    class DroppingPolicy(RoundRobinPolicy):
        """Buggy policy: forgets to assign registered queues."""

        def assign(self, queues, workers):
            return {w.worker_id: [] for w in workers}

    env = Environment()
    cpu = Cpu(env, ncores=4)
    orch = WorkOrchestrator(env, cpu, echo_executor, nworkers=2)
    orch.register_queue(QueuePair(env))
    Sanitizer().install(env)
    orch.policy = DroppingPolicy()
    with pytest.raises(SanitizerError, match="no live worker"):
        orch.rebalance()


def test_sanitizer_non_strict_collects_instead_of_raising():
    env = Environment()
    san = Sanitizer(strict=False).install(env)
    qp = QueuePair(env)

    def proc():
        yield qp.submit(LabRequest(op="x"))

    env.run(env.process(proc()))
    qp.inflight = 5
    qp.try_pop_request()  # does not raise
    assert len(san.violations) >= 1
    assert san.report()["checks"]["qp"] >= 1


# --- batch conservation -------------------------------------------------
def test_qp_batch_double_accounting_detected():
    env = Environment()
    Sanitizer().install(env)
    qp = QueuePair(env)

    def proc():
        accepts, rejects = qp.submit_batch([LabRequest(op="x"), LabRequest(op="y")])
        assert not rejects
        yield env.all_of(accepts)

    env.run(env.process(proc()))
    assert qp.batches_submitted == 1
    assert qp.batch_ops_submitted == qp.batch_ops_accepted == 2
    # corrupt: batch books claim more ops than the per-op total ever saw
    qp.batch_ops_submitted = qp.batch_ops_accepted = 99
    with pytest.raises(SanitizerError, match="double accounting"):
        qp.try_pop_request()


def test_qp_batch_counter_inconsistency_detected():
    env = Environment()
    Sanitizer().install(env)
    qp = QueuePair(env)

    def proc():
        accepts, _rejects = qp.submit_batch([LabRequest(op="x")])
        yield env.all_of(accepts)

    env.run(env.process(proc()))
    qp.batch_ops_submitted = 0  # corrupt: a doorbell with no ops behind it
    with pytest.raises(SanitizerError, match="batch counters inconsistent"):
        qp.try_pop_request()


def test_batch_settle_record_must_conserve_ops():
    env = Environment()
    san = Sanitizer(strict=False).install(env)
    env.tracer.emit(env.now, "san.batch", source="test", ops=3, delivered=3, double=0)
    assert san.violations == []
    env.tracer.emit(env.now, "san.batch", source="test", ops=3, delivered=2, double=0)
    assert any("delivered 2/3" in v for v in san.violations)
    env.tracer.emit(env.now, "san.batch", source="test", ops=3, delivered=3, double=1)
    assert any("double-delivered" in v for v in san.violations)
    assert san.report()["checks"]["batch"] == 3


def test_worker_batch_pop_accounting_detected():
    from repro.core.workers import Worker

    env = Environment()
    Sanitizer().install(env)
    cpu = Cpu(env, ncores=4)
    worker = Worker(env, 0, cpu, echo_executor, batch_max=8)
    worker.batch_pops = 3  # corrupt: pops recorded without drained ops
    with pytest.raises(SanitizerError, match="batch-pop accounting"):
        env.tracer.emit(env.now, "san.worker", worker=worker, qp=None)


def test_batching_scenario_is_deterministic():
    d1, r1 = run_scenario("batching")
    d2, r2 = run_scenario("batching")
    assert d1 == d2
    assert r1["violations"] == [] and r2["violations"] == []
    assert r1["result"]["merged_ops"] > 0
    assert r1["result"]["coalesced_ops"] >= 0
    assert r1["checks"].get("batch", 0) > 0, "no san.batch records audited"


# --- determinism checker -----------------------------------------------
def test_determinism_check_passes_on_seeded_scenario(determinism_check):
    def scenario(audit):
        env = Environment()
        audit.attach(env)
        rng = random.Random(42)  # re-seeded inside every run

        def pinger():
            for _ in range(16):
                yield env.timeout(rng.randrange(1, 1000))

        env.run(env.process(pinger()))

    determinism_check(scenario)


def test_determinism_check_flags_unseeded_randomness(determinism_check):
    rng = random.Random(1234)  # shared across runs: draws keep advancing

    def scenario(audit):
        env = Environment()
        audit.attach(env)

        def jitter():
            for _ in range(8):
                yield env.timeout(rng.randrange(1, 10**6))

        env.run(env.process(jitter()))

    with pytest.raises(AssertionError, match="non-deterministic"):
        determinism_check(scenario)


def test_check_scenario_quickstart_is_deterministic():
    d1, r1 = run_scenario("quickstart")
    d2, r2 = run_scenario("quickstart")
    assert d1 == d2
    assert r1["violations"] == [] and r2["violations"] == []
    assert r1["trace_events"] == r2["trace_events"] > 0


def test_audit_run_attach_enables_audit_seam():
    audit = AuditRun()
    env = Environment()
    audit.attach(env)
    assert env.tracer.audit and env.tracer.enabled
    env.event()  # tracked by the sanitizer's registry
    assert audit.sanitizer.report()["events_tracked"] >= 1
