"""Tests for the fluent StackBuilder, the deprecated spec wrappers, the
typed DeviceSpec, and system/client teardown."""

import pytest

from repro.core.runtime import RuntimeConfig
from repro.devices.profiles import DeviceSpec, make_device
from repro.errors import LabStorError
from repro.mods.generic_fs import GenericFS
from repro.sim import Environment
from repro.system import LabStorSystem


# ---------------------------------------------------------------------------
# deprecated wrappers: byte-identical specs + warnings
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["all", "min", "d"])
def test_fs_wrapper_and_builder_specs_byte_identical(variant):
    sys_ = LabStorSystem()
    with pytest.warns(DeprecationWarning, match="fs_stack_spec"):
        old = sys_.fs_stack_spec("fs::/x", variant=variant, uuid_prefix="cmp")
    new = (
        sys_.stack("fs::/x")
        .fs(variant=variant)
        .device("nvme")
        .driver("KernelDriverMod")
        .cache()
        .sched("NoOpSchedMod")
        .uuid_prefix("cmp")
        .build()
    )
    assert repr(old) == repr(new)


@pytest.mark.parametrize("variant", ["all", "min", "d"])
def test_kvs_wrapper_and_builder_specs_byte_identical(variant):
    sys_ = LabStorSystem()
    with pytest.warns(DeprecationWarning, match="kvs_stack_spec"):
        old = sys_.kvs_stack_spec("kvs::/x", variant=variant, uuid_prefix="cmp")
    new = (
        sys_.stack("kvs::/x")
        .kvs(variant=variant)
        .device("nvme")
        .uuid_prefix("cmp")
        .build()
    )
    assert repr(old) == repr(new)


def test_wrapper_kwargs_forwarded():
    sys_ = LabStorSystem()
    with pytest.warns(DeprecationWarning):
        old = sys_.fs_stack_spec(
            "fs::/k", variant="min", sched="BlkSwitchSchedMod", cache=False,
            nworkers=4, capacity_bytes=1 << 20, uuid_prefix="kw",
        )
    new = (
        sys_.stack("fs::/k")
        .fs(variant="min", nworkers=4, capacity_bytes=1 << 20)
        .sched("BlkSwitchSchedMod")
        .cache(False)
        .uuid_prefix("kw")
        .build()
    )
    assert repr(old) == repr(new)
    assert not any(n.uuid.endswith("lru") for n in new.nodes)
    sched = next(n for n in new.nodes if n.uuid.endswith("sched"))
    assert sched.attrs == {"device": "nvme"}


def test_mount_helpers_do_not_warn(recwarn):
    sys_ = LabStorSystem()
    sys_.mount_fs_stack("fs::/m", variant="min")
    sys_.mount_kvs_stack("kvs::/m", variant="min")
    assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


def test_fs_stack_spec_warning_points_at_caller():
    """stacklevel=2 must attribute the warning to the calling file (this
    test), not to system.py — that is what makes the deprecation findable."""
    import warnings

    sys_ = LabStorSystem()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sys_.fs_stack_spec("fs::/w", variant="min")
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(dep) == 1
    assert dep[0].filename == __file__


def test_kvs_stack_spec_warning_points_at_caller():
    import warnings

    sys_ = LabStorSystem()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sys_.kvs_stack_spec("kvs::/w", variant="min")
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(dep) == 1
    assert dep[0].filename == __file__


# ---------------------------------------------------------------------------
# sched(**attrs) overlay
# ---------------------------------------------------------------------------
def test_sched_attrs_overlay_device_defaults():
    sys_ = LabStorSystem()
    spec = (sys_.stack("fs::/s")
            .fs(variant="min")
            .sched("BatchSchedMod", window_ns=5000, batch_max=4)
            .uuid_prefix("sa")
            .build())
    sched = next(n for n in spec.nodes if n.uuid.endswith("sched"))
    assert sched.mod_name == "BatchSchedMod"
    # derived default survives; explicit attrs overlay it
    assert sched.attrs == {"nqueues": 8, "window_ns": 5000, "batch_max": 4}


def test_sched_without_attrs_unchanged():
    sys_ = LabStorSystem()
    spec = (sys_.stack("fs::/s2").fs(variant="min")
            .sched("NoOpSchedMod").uuid_prefix("sb").build())
    sched = next(n for n in spec.nodes if n.uuid.endswith("sched"))
    assert sched.attrs == {"nqueues": 8}


# ---------------------------------------------------------------------------
# builder validation
# ---------------------------------------------------------------------------
def test_builder_requires_fs_or_kvs():
    sys_ = LabStorSystem()
    with pytest.raises(LabStorError, match=r"\.fs\(\) or \.kvs\(\)"):
        sys_.stack("fs::/x").build()


def test_builder_rejects_unknown_device_listing_choices():
    sys_ = LabStorSystem(devices=("nvme", "hdd"))
    with pytest.raises(LabStorError, match="'hdd', 'nvme'"):
        sys_.stack("fs::/x").fs(variant="min").device("floppy").build()


def test_builder_rejects_cache_on_kvs():
    sys_ = LabStorSystem()
    with pytest.raises(LabStorError, match="no cache"):
        sys_.stack("kvs::/x").kvs(variant="min").cache().build()


def test_builder_mounts_working_stack():
    sys_ = LabStorSystem(config=RuntimeConfig(nworkers=1))
    sys_.stack("fs::/w").fs(variant="min").mount()
    gfs = GenericFS(sys_.client())

    def scenario():
        fd = yield from gfs.open("fs::/w/f", create=True)
        yield from gfs.write(fd, b"abc", offset=0)
        return (yield from gfs.read(fd, 3, offset=0))

    assert sys_.run(sys_.process(scenario())) == b"abc"
    sys_.shutdown()


# ---------------------------------------------------------------------------
# DeviceSpec / make_device validation
# ---------------------------------------------------------------------------
def test_device_spec_rejects_unknown_kind():
    with pytest.raises(LabStorError, match="unknown device kind"):
        DeviceSpec("floppy")


def test_device_spec_rejects_unknown_override_listing_valid_keys():
    with pytest.raises(LabStorError, match="nqueues"):
        DeviceSpec("nvme", nqueuez=16)


def test_make_device_rejects_unknown_override():
    env = Environment()
    with pytest.raises(LabStorError, match="valid keys"):
        make_device(env, "nvme", nqueuez=16)


def test_make_device_unknown_kind_stays_valueerror():
    env = Environment()
    with pytest.raises(ValueError, match="unknown device kind"):
        make_device(env, "floppy")


def test_device_spec_builds_device():
    env = Environment()
    dev = DeviceSpec("nvme", nqueues=2).build(env)
    assert dev.nqueues == 2


# ---------------------------------------------------------------------------
# client.close() / system.shutdown(): no leaked daemon processes
# ---------------------------------------------------------------------------
def test_shutdown_stops_pollers_and_workers():
    sys_ = LabStorSystem(config=RuntimeConfig(nworkers=2))
    sys_.stack("fs::/s").fs(variant="min").mount()
    gfs = GenericFS(sys_.client())
    clients = list(sys_._clients)

    def scenario():
        fd = yield from gfs.open("fs::/s/f", create=True)
        yield from gfs.write(fd, b"x" * 4096, offset=0)

    sys_.run(sys_.process(scenario()))
    pollers = [c._poller for c in clients]
    assert all(p is not None and p.is_alive for p in pollers)
    admin = sys_.runtime._admin
    orch_proc = sys_.runtime.orchestrator._proc

    sys_.shutdown()

    assert sys_._clients == []
    assert all(c.conn is None and c._poller is None for c in clients)
    assert not any(p.is_alive for p in pollers)
    assert not admin.is_alive
    assert not orch_proc.is_alive
    assert sys_.runtime.orchestrator.workers == []


def test_client_close_is_idempotent_and_survives_reconnect_cycles():
    sys_ = LabStorSystem(config=RuntimeConfig(nworkers=1))
    sys_.stack("fs::/c").fs(variant="min").mount()
    for _ in range(3):
        c = sys_.client()
        gfs = GenericFS(c)

        def scenario():
            fd = yield from gfs.open("fs::/c/f", create=True)
            yield from gfs.write(fd, b"y" * 512, offset=0)

        sys_.run(sys_.process(scenario()))
        sys_.run(c.conn.qp.drained())
        c.close()
        c.close()  # second close must be a no-op
        sys_._clients.remove(c)
    sys_.shutdown()
