"""Tests for the YAML-subset spec parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import SpecParseError, dump_spec, parse_spec


def test_empty_document():
    assert parse_spec("") == {}
    assert parse_spec("\n  \n# only a comment\n") == {}


def test_flat_mapping_scalars():
    doc = """
name: labstor
workers: 8
threshold: 0.25
debug: true
trace: false
note: null
"""
    assert parse_spec(doc) == {
        "name": "labstor",
        "workers": 8,
        "threshold": 0.25,
        "debug": True,
        "trace": False,
        "note": None,
    }


def test_nested_mapping():
    doc = """
rules:
  exec_mode: async
  priority: 3
"""
    assert parse_spec(doc) == {"rules": {"exec_mode": "async", "priority": 3}}


def test_list_of_scalars():
    doc = """
outputs:
  - lru0
  - sched0
"""
    assert parse_spec(doc) == {"outputs": ["lru0", "sched0"]}


def test_list_of_mappings():
    doc = """
labmods:
  - mod: LabFs
    uuid: fs0
    outputs: [lru0]
  - mod: LruCacheMod
    uuid: lru0
"""
    assert parse_spec(doc) == {
        "labmods": [
            {"mod": "LabFs", "uuid": "fs0", "outputs": ["lru0"]},
            {"mod": "LruCacheMod", "uuid": "lru0"},
        ]
    }


def test_colon_in_scalar_value():
    """Mount points like fs::/b must not be parsed as nested mappings."""
    doc = "mount: fs::/b\n"
    assert parse_spec(doc) == {"mount": "fs::/b"}


def test_list_item_with_colon_scalar():
    doc = """
mounts:
  - fs::/a
  - kvs::/b
"""
    assert parse_spec(doc) == {"mounts": ["fs::/a", "kvs::/b"]}


def test_comments_stripped():
    doc = """
# header comment
workers: 4  # trailing comment
"""
    assert parse_spec(doc) == {"workers": 4}


def test_quoted_strings_preserved():
    doc = 'path: "/with: colon"\n'
    assert parse_spec(doc) == {"path": "/with: colon"}


def test_inline_list():
    assert parse_spec("xs: [1, 2, 3]\n") == {"xs": [1, 2, 3]}
    assert parse_spec("xs: []\n") == {"xs": []}


def test_tabs_rejected():
    with pytest.raises(SpecParseError, match="tabs"):
        parse_spec("a:\n\tb: 1\n")


def test_garbage_line_rejected():
    with pytest.raises(SpecParseError):
        parse_spec("just some words without structure\nmore: 1\n")


def test_full_labstack_spec_document():
    doc = """
mount: fs::/b
rules:
  exec_mode: async
  priority: 1
  admins:
    - alice
labmods:
  - mod: PermissionsMod
    uuid: perm0
    outputs: [fs0]
  - mod: LabFs
    uuid: fs0
    attrs:
      capacity_bytes: 1073741824
      nworkers: 8
    outputs: [drv0]
  - mod: KernelDriverMod
    uuid: drv0
    attrs:
      device: nvme
"""
    d = parse_spec(doc)
    assert d["mount"] == "fs::/b"
    assert d["rules"]["admins"] == ["alice"]
    assert d["labmods"][1]["attrs"]["capacity_bytes"] == 1073741824
    assert d["labmods"][2]["attrs"]["device"] == "nvme"


# round-trip property ------------------------------------------------------
_scalars = st.one_of(
    st.integers(-(10**6), 10**6),
    st.booleans(),
    st.none(),
    st.text(alphabet="abcdefgh_/.", min_size=1, max_size=12),
)
# the supported subset: mappings nest arbitrarily; lists hold scalars or
# mappings (never lists-of-lists — LabStack specs don't need them)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(
            st.one_of(
                _scalars,
                st.dictionaries(
                    st.text(alphabet="abcdef_", min_size=1, max_size=8), children, max_size=3
                ),
            ),
            max_size=4,
        ),
        st.dictionaries(st.text(alphabet="abcdef_", min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(doc=st.dictionaries(st.text(alphabet="abcdef_", min_size=1, max_size=8), _values, max_size=5))
def test_property_dump_parse_roundtrip(doc):
    """dump_spec followed by parse_spec is the identity on the subset."""
    text = dump_spec(doc)
    assert parse_spec(text) == doc
