"""Tests for ConsistencyMod, IoStatsMod and the allocator baseline."""

import pytest

from repro.core import LabRequest, NodeSpec, UpgradeRequest
from repro.errors import LabStorError, OutOfSpaceError
from repro.mods.consistency import ConsistencyMod
from repro.mods.generic_fs import GenericFS
from repro.mods.iostats import IoStatsMod
from repro.mods.labfs.alloc import CentralizedBlockAllocator
from repro.sim import Environment
from repro.system import LabStorSystem


def _mount_with_insert(sys_, mount, mod_name, uuid, attrs=None, after="labfs"):
    spec = sys_.stack(mount).fs(variant="min").build()
    anchor = next(n for n in spec.nodes if n.uuid.endswith(after))
    node = NodeSpec(mod_name=mod_name, uuid=uuid, attrs=attrs or {})
    node.outputs = list(anchor.outputs)
    anchor.outputs = [uuid]
    spec.nodes.insert(spec.nodes.index(anchor) + 1, node)
    return sys_.runtime.mount_stack(spec)


# --- ConsistencyMod ----------------------------------------------------------
def test_consistency_strict_flushes_every_write():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_insert(sys_, "fs::/s", "ConsistencyMod", "cons0", {"policy": "strict"})
    gfs = GenericFS(sys_.client())

    def proc():
        yield from gfs.write_file("fs::/s/f", b"x" * 8192)

    sys_.run(sys_.process(proc()))
    cons = sys_.runtime.registry.get("cons0")
    assert cons.flushes_issued >= 1


def test_consistency_relaxed_absorbs_fsync():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_insert(sys_, "fs::/r", "ConsistencyMod", "cons1", {"policy": "relaxed"})
    gfs = GenericFS(sys_.client())
    dev = sys_.devices["nvme"]

    def proc():
        fd = yield from gfs.open("fs::/r/f", create=True)
        yield from gfs.write(fd, b"y" * 4096, offset=0)
        flushes_before = dev.completed
        yield from gfs.fsync(fd)
        return dev.completed - flushes_before

    extra_device_ops = sys_.run(sys_.process(proc()))
    cons = sys_.runtime.registry.get("cons1")
    assert cons.flushes_absorbed == 1
    assert extra_device_ops == 0  # the flush never reached the device


def test_consistency_strict_slower_than_relaxed():
    def elapsed(policy):
        sys_ = LabStorSystem(devices=("nvme",))
        _mount_with_insert(sys_, "fs::/t", "ConsistencyMod", f"c_{policy}", {"policy": policy})
        gfs = GenericFS(sys_.client())

        def proc():
            fd = yield from gfs.open("fs::/t/f", create=True)
            for i in range(10):
                yield from gfs.write(fd, b"z" * 4096, offset=i * 4096)
            return sys_.env.now

        return sys_.run(sys_.process(proc()))

    assert elapsed("strict") > elapsed("relaxed")


def test_consistency_policy_hot_retune():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_insert(sys_, "fs::/h", "ConsistencyMod", "cons2", {"policy": "standard"})
    cons = sys_.runtime.registry.get("cons2")
    cons.set_policy("relaxed")
    assert cons.policy == "relaxed"
    with pytest.raises(LabStorError):
        cons.set_policy("eventual-maybe")


def test_consistency_bad_policy_attr():
    sys_ = LabStorSystem(devices=("nvme",))
    with pytest.raises(LabStorError):
        _mount_with_insert(sys_, "fs::/b", "ConsistencyMod", "cons3", {"policy": "weird"})


def test_consistency_state_survives_upgrade():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_insert(sys_, "fs::/u", "ConsistencyMod", "cons4", {"policy": "relaxed"})

    class ConsistencyModV2(ConsistencyMod):
        pass

    new = sys_.runtime.registry.hot_swap("cons4", ConsistencyModV2)
    assert new.policy == "relaxed"
    assert new.version == 2


# --- IoStatsMod -----------------------------------------------------------
def test_iostats_records_per_op_latency():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_insert(sys_, "fs::/m", "IoStatsMod", "stats0")
    gfs = GenericFS(sys_.client())

    def proc():
        yield from gfs.write_file("fs::/m/a", b"d" * 8192)
        yield from gfs.read_file("fs::/m/a")

    sys_.run(sys_.process(proc()))
    stats = sys_.runtime.registry.get("stats0")
    report = stats.report()
    assert "blk.write" in report and "blk.read" in report
    assert report["blk.write"]["count"] >= 1
    assert report["blk.write"]["mean"] > 0
    assert stats.bytes_moved >= 8192


def test_iostats_learned_estimate_converges():
    sys_ = LabStorSystem(devices=("nvme",))
    _mount_with_insert(sys_, "fs::/e", "IoStatsMod", "stats1")
    gfs = GenericFS(sys_.client())
    stats = sys_.runtime.registry.get("stats1")
    req = LabRequest(op="blk.write", payload={"offset": 0, "size": 4096, "data": b"x" * 4096})
    assert stats.est_processing_time(req) == 1000  # default before learning

    def proc():
        fd = yield from gfs.open("fs::/e/f", create=True)
        for i in range(8):
            yield from gfs.write(fd, b"x" * 4096, offset=i * 4096)

    sys_.run(sys_.process(proc()))
    learned = stats.est_processing_time(req)
    # downstream of IoStats: sched + driver + nvme 4KB write ~ 16-22us
    assert 10_000 < learned < 40_000


# --- CentralizedBlockAllocator ----------------------------------------------
def test_centralized_allocator_basic():
    env = Environment()
    a = CentralizedBlockAllocator(env, 10, base_block=5)
    b1 = a.alloc()
    assert b1 == 5
    a.free(b1)
    assert a.alloc() == b1
    with pytest.raises(OutOfSpaceError):
        a.free(999)


def test_centralized_allocator_exhaustion():
    env = Environment()
    a = CentralizedBlockAllocator(env, 2)
    a.alloc()
    a.alloc()
    with pytest.raises(OutOfSpaceError):
        a.alloc()


def test_centralized_allocator_serializes_under_concurrency():
    env = Environment()
    a = CentralizedBlockAllocator(env, 1000, lock_hold_ns=1000)
    done = []

    def worker(wid):
        for _ in range(5):
            block = yield from a.alloc_block(wid, None)
            done.append(block)

    for w in range(4):
        env.process(worker(w))
    env.run()
    assert len(set(done)) == 20
    # 20 allocations x 1000ns hold, fully serialized
    assert env.now == 20 * 1000


def test_labfs_with_centralized_allocator_still_correct():
    sys_ = LabStorSystem(devices=("nvme",))
    spec = sys_.stack("fs::/c").fs(variant="min").build()
    labfs_node = next(n for n in spec.nodes if n.uuid.endswith("labfs"))
    labfs_node.attrs["allocator"] = "centralized"
    sys_.runtime.mount_stack(spec)
    gfs = GenericFS(sys_.client())

    def proc():
        yield from gfs.write_file("fs::/c/f", b"central" * 1000)
        return (yield from gfs.read_file("fs::/c/f"))

    assert sys_.run(sys_.process(proc())) == b"central" * 1000


def test_perworker_outscales_centralized_allocator():
    """The ablation the paper's design implies: under concurrent writers,
    the per-worker allocator sustains higher throughput."""

    def elapsed(allocator):
        from repro.core import RuntimeConfig

        sys_ = LabStorSystem(devices=("nvme",),
                             config=RuntimeConfig(nworkers=8, ncores=32))
        spec = sys_.stack("fs::/a").fs(variant="min").build()
        next(n for n in spec.nodes if n.uuid.endswith("labfs")).attrs["allocator"] = allocator
        sys_.runtime.mount_stack(spec)

        def writer(gfs, tid):
            for i in range(10):
                fd = yield from gfs.open(f"fs::/a/t{tid}_{i}", create=True)
                yield from gfs.write(fd, b"w" * 65536, offset=0)
                yield from gfs.close(fd)

        procs = [sys_.process(writer(GenericFS(sys_.client()), t)) for t in range(8)]
        sys_.run(sys_.env.all_of(procs))
        return sys_.env.now

    # centralized lock (900ns x 16 blocks x 80 files) serializes allocation
    assert elapsed("centralized") > 1.1 * elapsed("perworker")
