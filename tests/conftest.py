"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture
def determinism_check():
    """Assert a scenario produces an identical trace hash on every run.

    The scenario callable receives an :class:`repro.sim.check.AuditRun`;
    it must build its environment, call ``audit.attach(env)`` before
    driving any simulation, and run to completion (the protocol of
    ``repro.sim.check.SCENARIOS``).  Returns the common digest.
    """
    from repro.sim.check import AuditRun, reset_global_counters

    def _check(scenario, runs=2, strict=True):
        digests = []
        for _ in range(runs):
            reset_global_counters()
            audit = AuditRun(strict=strict)
            scenario(audit)
            audit.finish()
            digests.append(audit.digest)
        assert len(set(digests)) == 1, f"non-deterministic trace stream: {digests}"
        return digests[0]

    return _check
