"""Replayed traces and fio iodepth fan-out against the batching fast path.

A recorded application trace replayed against a batched system (worker
batch-pop + BatchSchedMod + device coalescing) must land exactly the
bytes the unbatched replay lands; fio at iodepth>1 keeps several client
requests in flight at once, which exercises the worker's batch-pop and
the batch CQ reap without ever violating queue-pair conservation.
"""

import pytest

from repro.core.labstack import StackSpec
from repro.core.runtime import RuntimeConfig
from repro.devices.profiles import DeviceSpec
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.workloads.fio import FioJob, LabStackEngine, run_fio
from repro.workloads.fsapi import GenericFsAdapter
from repro.workloads.replay import RecordingApi, load_trace, replay_trace, save_trace

PAGE = 4096


def _fs_system(batched: bool):
    if batched:
        system = LabStorSystem(
            devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
            config=RuntimeConfig(nworkers=1, worker_batch_max=8),
        )
        (system.stack("fs::/r")
         .fs(variant="all")
         .sched("BatchSchedMod", window_ns=10_000, batch_max=8)
         .mount())
    else:
        system = LabStorSystem(devices=("nvme",), config=RuntimeConfig(nworkers=1))
        system.stack("fs::/r").fs(variant="all").mount()
    return system


def _record_trace() -> str:
    """Record a small two-thread workload against a plain system."""
    system = _fs_system(batched=False)
    ops = []

    def thread(tid: int):
        api = RecordingApi(GenericFsAdapter(GenericFS(system.client()), "fs::/r"),
                           tid=tid)
        fd = yield from api.open(f"/t{tid}", create=True)
        for i in range(12):
            yield from api.write(fd, bytes([tid * 32 + i + 1]) * PAGE, offset=i * PAGE)
        yield from api.fsync(fd)
        yield from api.read(fd, 12 * PAGE, offset=0)
        yield from api.close(fd)
        ops.extend(api.ops)

    procs = [system.process(thread(t)) for t in range(2)]
    system.run(system.env.all_of(procs))
    return save_trace(ops)


def _replay(trace_text: str, batched: bool):
    system = _fs_system(batched)
    gfs_cache: dict[int, GenericFsAdapter] = {}

    def factory(tid: int) -> GenericFsAdapter:
        if tid not in gfs_cache:
            gfs_cache[tid] = GenericFsAdapter(GenericFS(system.client()), "fs::/r")
        return gfs_cache[tid]

    result = replay_trace(system.env, factory, load_trace(trace_text), seed=42)

    def read_back():
        gfs = GenericFS(system.client())
        out = []
        for tid in range(2):
            out.append((yield from gfs.read_file(f"fs::/r/t{tid}")))
        return out

    contents = system.run(system.process(read_back()))
    return result, contents


def test_replay_batched_matches_unbatched():
    trace_text = _record_trace()
    base_result, base_contents = _replay(trace_text, batched=False)
    fast_result, fast_contents = _replay(trace_text, batched=True)
    assert fast_result.errors == 0 and base_result.errors == 0
    assert fast_result.ops == base_result.ops
    assert fast_contents == base_contents, "replayed file contents diverged"


@pytest.mark.parametrize("iodepth", [2, 4])
def test_fio_iodepth_fans_out_through_batch_pop(iodepth):
    """iodepth>1 keeps multiple SQEs queued: the worker drains them in one
    batch-pop wakeup and conservation must hold at quiescence."""
    system = LabStorSystem(
        devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
        config=RuntimeConfig(nworkers=1, worker_batch_max=8),
    )
    spec = StackSpec.linear("blk::/fio", [("BatchSchedMod", "rb.sched"),
                                          ("KernelDriverMod", "rb.drv")])
    spec.nodes[0].attrs = {"nqueues": 8, "window_ns": 10_000, "batch_max": 8}
    spec.nodes[1].attrs = {"device": "nvme"}
    stack = system.runtime.mount_stack(spec)
    client = system.client()
    engine = LabStackEngine(client, stack, system.devices["nvme"])
    job = FioJob(rw="write", bs=PAGE, nops=64, iodepth=iodepth,
                 region_size=64 * PAGE)
    result = run_fio(system.env, engine, [job], seed=1)
    assert result.ops == 64
    qp = client.conn.qp
    assert qp.inflight == 0
    assert qp.submitted_total == qp.completed_total == 64
    worker = system.runtime.orchestrator.workers[0]
    assert worker.batch_pops > 0, "iodepth>1 never triggered a batch pop"
    assert worker.batch_pop_ops >= 2 * worker.batch_pops


def test_fio_deeper_iodepth_not_slower():
    """Amortization sanity: qd4 throughput is at least qd1's."""
    def run(iodepth: int) -> float:
        system = LabStorSystem(
            devices=(DeviceSpec("nvme", coalesce_max=8, coalesce_window_ns=2000),),
            config=RuntimeConfig(nworkers=1, worker_batch_max=8),
        )
        spec = StackSpec.linear("blk::/fio", [("BatchSchedMod", "rq.sched"),
                                              ("KernelDriverMod", "rq.drv")])
        spec.nodes[0].attrs = {"nqueues": 8, "window_ns": 10_000, "batch_max": 8}
        spec.nodes[1].attrs = {"device": "nvme"}
        stack = system.runtime.mount_stack(spec)
        engine = LabStackEngine(system.client(), stack, system.devices["nvme"])
        job = FioJob(rw="write", bs=PAGE, nops=96, iodepth=iodepth,
                     region_size=96 * PAGE)
        return run_fio(system.env, engine, [job], seed=1).iops

    assert run(4) >= run(1)
