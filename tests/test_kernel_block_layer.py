"""Tests for the kernel block layer and in-kernel schedulers."""

import pytest

from repro.devices import IoOp, make_device
from repro.kernel import BlockLayer, DEFAULT_COST, KernelBlkSwitch, KernelNoop
from repro.sim import Environment
from repro.units import KiB, MiB


def test_submit_bio_roundtrip():
    env = Environment()
    dev = make_device(env, "nvme")
    bl = BlockLayer(env, dev)

    def proc():
        yield from bl.submit_bio(IoOp.WRITE, 0, 4096, b"k" * 4096)
        req = yield from bl.submit_bio(IoOp.READ, 0, 4096)
        return req.result

    assert env.run(env.process(proc())) == b"k" * 4096


def test_block_layer_adds_software_overhead():
    env = Environment()
    dev = make_device(env, "nvme")
    bl = BlockLayer(env, dev)
    device_only = dev.profile.service_ns(IoOp.WRITE, 4096)

    def proc():
        start = env.now
        yield from bl.submit_bio(IoOp.WRITE, 0, 4096, b"x" * 4096)
        return env.now - start

    total = env.run(env.process(proc()))
    c = DEFAULT_COST
    sw = c.blk_alloc_ns + c.blk_sched_ns + c.blk_dispatch_ns + c.blk_complete_ns
    assert total == device_only + sw


def test_noop_maps_by_origin_core():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=4)
    bl = BlockLayer(env, dev, scheduler=KernelNoop())
    assert bl.scheduler.select_hctx(bl, 4096, origin_core=6) == 2


def test_blk_switch_lane_selection():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=4)
    bl = BlockLayer(env, dev, scheduler=KernelBlkSwitch())
    bl.inflight_bytes = [100, 5, 100, 7]
    # small request: confined to the latency lane (queue 0) even if loaded
    assert bl.scheduler.select_hctx(bl, 4096, origin_core=0) == 0
    # large request: least-loaded throughput queue, never the latency lane
    assert bl.scheduler.select_hctx(bl, 64 * KiB, origin_core=0) == 1


def test_blk_switch_avoids_hol_blocking():
    """Colocated big+small streams: blk-switch keeps small-request latency low."""

    def run(scheduler):
        env = Environment()
        dev = make_device(env, "nvme", nqueues=2, parallelism=1)
        bl = BlockLayer(env, dev, scheduler=scheduler)
        lat = {}

        def thrpt_app():
            # the throughput app floods core 0's hctx with deep large writes
            def one(i):
                yield from bl.submit_bio(IoOp.WRITE, i * MiB, MiB, b"T" * MiB, origin_core=0)

            yield env.all_of([env.process(one(i)) for i in range(8)])

        def lat_app():
            yield env.timeout(10_000)  # arrive while big writes queue
            start = env.now
            # originates on core 2 -> hctx 0 under noop (2 % 2), colliding
            # with the throughput app; blk-switch steers it to the idle hctx
            yield from bl.submit_bio(IoOp.WRITE, 512 * MiB, 4 * KiB, b"L" * 4 * KiB, origin_core=2)
            lat["small"] = env.now - start

        env.process(thrpt_app())
        env.process(lat_app())
        env.run()
        return lat["small"]

    noop_lat = run(KernelNoop())
    blk_lat = run(KernelBlkSwitch())
    assert blk_lat < noop_lat


def test_inflight_accounting_returns_to_zero():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=2)
    bl = BlockLayer(env, dev)

    def proc():
        yield from bl.submit_bio(IoOp.WRITE, 0, 4096, b"x" * 4096, origin_core=1)

    env.run(env.process(proc()))
    assert bl.inflight_bytes == [0, 0]
    assert bl.submitted == 1


def test_explicit_hctx_skips_scheduler():
    env = Environment()
    dev = make_device(env, "nvme", nqueues=4)
    bl = BlockLayer(env, dev)

    def proc():
        req = yield from bl.submit_bio(IoOp.WRITE, 0, 4096, b"x" * 4096, hctx=3)
        return req.hctx

    assert env.run(env.process(proc())) == 3


def test_set_scheduler_swaps_elevator():
    env = Environment()
    dev = make_device(env, "nvme")
    bl = BlockLayer(env, dev)
    assert isinstance(bl.scheduler, KernelNoop)
    bl.set_scheduler(KernelBlkSwitch())
    assert bl.scheduler.name == "linux-blk-switch"
