"""Edge-case tests for the client library and runtime configuration."""

import pytest

from repro.core import LabRequest, LabStorClient, RuntimeConfig
from repro.core.runtime import LabStorRuntime
from repro.errors import LabStorError
from repro.mods.generic_fs import GenericFS
from repro.sim import Environment
from repro.system import LabStorSystem


def test_client_double_connect_rejected():
    sys_ = LabStorSystem(devices=("nvme",))
    client = sys_.client()

    def proc():
        with pytest.raises(LabStorError, match="already connected"):
            yield sys_.env.process(client.connect())
        return True

    assert sys_.run(sys_.process(proc()))


def test_call_without_connection_rejected():
    sys_ = LabStorSystem(devices=("nvme",))
    stack = sys_.mount_fs_stack("fs::/x", variant="min")
    client = LabStorClient(sys_.env, sys_.runtime)  # never connected

    def proc():
        with pytest.raises(LabStorError, match="not connected"):
            yield from client.call(stack, LabRequest(op="fs.stat", payload={"path": "/"}))
        return True

    assert sys_.run(sys_.process(proc()))


def test_unknown_fd_errors():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/x", variant="min")
    gfs = GenericFS(sys_.client())

    def proc():
        with pytest.raises(LabStorError, match="unknown fd"):
            yield from gfs.write(99, b"x")
        with pytest.raises(LabStorError, match="unknown fd"):
            yield from gfs.close(99)
        return True

    assert sys_.run(sys_.process(proc()))


def test_call_path_resolves_through_namespace():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/deep/mount", variant="min")
    client = sys_.client()

    def proc():
        ino = yield from client.call_path(
            "fs::/deep/mount/a/b.txt", "fs.open", {"create": True}
        )
        return ino

    assert sys_.run(sys_.process(proc())) >= 1


def test_request_without_routing_rejected():
    sys_ = LabStorSystem(devices=("nvme",))

    def proc():
        with pytest.raises(LabStorError, match="routing"):
            yield sys_.env.process(sys_.runtime.execute_sync(LabRequest(op="fs.open")))
        return True

    assert sys_.run(sys_.process(proc()))


def test_disconnect_idempotent_and_unregisters():
    sys_ = LabStorSystem(devices=("nvme",))
    client = sys_.client()
    qid = client.conn.qp.qid
    client.disconnect()
    client.disconnect()  # no-op
    assert client.conn is None
    assert qid not in sys_.runtime.ipc.qps


def test_runtime_config_from_yaml():
    cfg = RuntimeConfig.from_yaml(
        """
nworkers: 4
policy: dynamic
max_workers: 12
worker_idle_sleep_ns: 100000
unknown_future_key: ignored
"""
    )
    assert cfg.nworkers == 4
    assert cfg.policy == "dynamic"
    assert cfg.max_workers == 12
    assert cfg.worker_idle_sleep_ns == 100_000


def test_runtime_config_bad_policy():
    env = Environment()
    with pytest.raises(LabStorError, match="policy"):
        LabStorRuntime(env, {}, config=RuntimeConfig(policy="chaotic"))


def test_mount_unmount_stack_lifecycle():
    sys_ = LabStorSystem(devices=("nvme",))
    sys_.mount_fs_stack("fs::/tmp", variant="min")
    assert "fs::/tmp" in sys_.runtime.namespace
    sys_.runtime.unmount_stack("fs::/tmp")
    assert "fs::/tmp" not in sys_.runtime.namespace


def test_filebench_pmem_same_trend_as_nvme():
    """Paper: 'The PMEM experiments return identical trends' (Fig 9d)."""
    from repro.experiments.filebench_eval import run_filebench

    ext4 = run_filebench("ext4", "varmail", device="pmem", nthreads=4, loops=2)
    lab = run_filebench("lab-min", "varmail", device="pmem", nthreads=4, loops=2)
    assert lab["kops_per_sec"] > ext4["kops_per_sec"]


def test_client_gives_up_when_runtime_never_restarts():
    from repro.errors import RuntimeCrashed
    from repro.units import msec

    sys_ = LabStorSystem(devices=("nvme",),
                         config=RuntimeConfig(restart_wait_ns=msec(1)))
    stack = sys_.mount_fs_stack("fs::/dead", variant="min")
    client = sys_.client()
    sys_.runtime.crash()

    def proc():
        with pytest.raises(RuntimeCrashed):
            yield from client.call(
                stack, LabRequest(op="fs.open", payload={"path": "/f", "create": True})
            )
        return True

    assert sys_.run(sys_.process(proc()))
