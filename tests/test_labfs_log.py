"""Tests for the LabFS metadata log and replay."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mods.labfs import log as mdlog
from repro.mods.labfs.log import MetadataLog, replay


def test_replay_create_and_size():
    log = MetadataLog()
    log.append(0, mdlog.CREATE, 1, "/a")
    log.append(0, mdlog.SET_SIZE, 1, 4096)
    table = replay(log)
    assert table == {1: {"path": "/a", "size": 4096, "blocks": {}, "dir": False}}


def test_replay_unlink_removes():
    log = MetadataLog()
    log.append(0, mdlog.CREATE, 1, "/a")
    log.append(0, mdlog.UNLINK, 1)
    assert replay(log) == {}


def test_replay_rename():
    log = MetadataLog()
    log.append(0, mdlog.CREATE, 1, "/old")
    log.append(1, mdlog.RENAME, 1, "/new")
    assert replay(log)[1]["path"] == "/new"


def test_replay_block_mapping():
    log = MetadataLog()
    log.append(0, mdlog.CREATE, 5, "/f")
    log.append(0, mdlog.MAP_BLOCK, 5, 0, 8192)
    log.append(1, mdlog.MAP_BLOCK, 5, 1, 12288)
    assert replay(log)[5]["blocks"] == {0: 8192, 1: 12288}


def test_per_worker_logs_merge_in_global_order():
    """Records interleave by global sequence, not per-worker order."""
    log = MetadataLog()
    log.append(0, mdlog.CREATE, 1, "/a")
    log.append(1, mdlog.RENAME, 1, "/b")   # later seq, different worker
    log.append(0, mdlog.RENAME, 1, "/c")   # even later, worker 0
    assert replay(log)[1]["path"] == "/c"
    assert log.worker_ids() == [0, 1]


def test_records_for_unknown_inode_ignored():
    log = MetadataLog()
    log.append(0, mdlog.SET_SIZE, 42, 100)
    log.append(0, mdlog.MAP_BLOCK, 42, 0, 4096)
    log.append(0, mdlog.RENAME, 42, "/x")
    assert replay(log) == {}


def test_compact_drops_dead_records():
    log = MetadataLog()
    log.append(0, mdlog.CREATE, 1, "/a")
    log.append(0, mdlog.CREATE, 2, "/b")
    log.append(0, mdlog.UNLINK, 2)
    dropped = log.compact(live_inos={1})
    assert dropped == 2
    assert replay(log) == {1: {"path": "/a", "size": 0, "blocks": {}, "dir": False}}


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["create", "unlink", "set_size", "map"]),
            st.integers(1, 5),      # ino
            st.integers(0, 3),      # worker
            st.integers(0, 10_000),  # arg
        ),
        max_size=60,
    )
)
def test_property_replay_matches_direct_state_machine(ops):
    """Replaying the log always equals applying the ops to a dict directly."""
    log = MetadataLog()
    model: dict[int, dict] = {}
    for kind, ino, worker, arg in ops:
        if kind == "create":
            if ino in model:
                continue  # FS would reject; log only legal ops
            log.append(worker, mdlog.CREATE, ino, f"/f{ino}")
            model[ino] = {"path": f"/f{ino}", "size": 0, "blocks": {}, "dir": False}
        elif kind == "unlink":
            if ino not in model:
                continue
            log.append(worker, mdlog.UNLINK, ino)
            del model[ino]
        elif kind == "set_size":
            if ino not in model:
                continue
            log.append(worker, mdlog.SET_SIZE, ino, arg)
            model[ino]["size"] = arg
        else:
            if ino not in model:
                continue
            log.append(worker, mdlog.MAP_BLOCK, ino, arg % 8, arg * 4096)
            model[ino]["blocks"][arg % 8] = arg * 4096
    assert replay(log) == model
