"""Tests for the LRU cache's write-back policy."""

import pytest

from repro.errors import LabStorError
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem
from repro.units import KiB


def make(policy="back", capacity_pages=16_384):
    sys_ = LabStorSystem(devices=("nvme",))
    spec = sys_.stack("fs::/wb").fs(variant="min").build()
    lru = next(n for n in spec.nodes if n.uuid.endswith("lru"))
    lru.attrs.update({"write_policy": policy, "capacity_pages": capacity_pages})
    stack = sys_.runtime.mount_stack(spec)
    lru_mod = next(m for u, m in stack.mods.items() if u.endswith("lru"))
    return sys_, GenericFS(sys_.client()), lru_mod


def run(sys_, gen):
    return sys_.run(sys_.process(gen))


def test_bad_policy_rejected():
    with pytest.raises(LabStorError, match="write_policy"):
        make(policy="sideways")


def test_writeback_absorbs_writes_no_device_io():
    sys_, gfs, lru = make()
    dev = sys_.devices["nvme"]

    def proc():
        fd = yield from gfs.open("fs::/wb/f", create=True)
        before = dev.bytes_written
        yield from gfs.write(fd, b"w" * (16 * KiB), offset=0)
        return dev.bytes_written - before

    assert run(sys_, proc()) == 0  # absorbed into dirty pages
    assert len(lru.dirty) == 4


def test_writeback_faster_than_writethrough():
    def write_latency(policy):
        sys_, gfs, _ = make(policy=policy)

        def proc():
            fd = yield from gfs.open("fs::/wb/f", create=True)
            t0 = sys_.env.now
            yield from gfs.write(fd, b"w" * (16 * KiB), offset=0)
            return sys_.env.now - t0

        return run(sys_, proc())

    assert write_latency("back") < write_latency("through") / 2


def test_fsync_drains_dirty_pages_to_device():
    sys_, gfs, lru = make()
    dev = sys_.devices["nvme"]

    def proc():
        fd = yield from gfs.open("fs::/wb/f", create=True)
        yield from gfs.write(fd, b"d" * (16 * KiB), offset=0)
        before = dev.bytes_written
        yield from gfs.fsync(fd)
        return dev.bytes_written - before

    assert run(sys_, proc()) >= 16 * KiB
    assert len(lru.dirty) == 0
    assert lru.writebacks >= 1


def test_read_your_own_dirty_writes():
    sys_, gfs, lru = make()

    def proc():
        fd = yield from gfs.open("fs::/wb/f", create=True)
        yield from gfs.write(fd, b"A" * (8 * KiB), offset=0)
        return (yield from gfs.read(fd, 8 * KiB, offset=0))

    assert run(sys_, proc()) == b"A" * (8 * KiB)


def test_dirty_page_wins_over_stale_device_on_partial_miss():
    """A read spanning dirty-cached and uncached pages overlays the cache."""
    sys_, gfs, lru = make()

    def proc():
        fd = yield from gfs.open("fs::/wb/f", create=True)
        # page 0 goes durable; page 1 stays dirty in cache only
        yield from gfs.write(fd, b"0" * (4 * KiB), offset=0)
        yield from gfs.fsync(fd)
        yield from gfs.write(fd, b"1" * (4 * KiB), offset=4 * KiB)
        # evict page 0 from the cache so the read partially misses
        first_key = next(iter(lru.pages))
        if first_key not in lru.dirty:
            lru.pages.pop(first_key, None)
        data = yield from gfs.read(fd, 8 * KiB, offset=0)
        return data

    data = run(sys_, proc())
    assert data == b"0" * (4 * KiB) + b"1" * (4 * KiB)


def test_eviction_writes_back_dirty_pages():
    sys_, gfs, lru = make(capacity_pages=4)
    dev = sys_.devices["nvme"]

    def proc():
        fd = yield from gfs.open("fs::/wb/f", create=True)
        for i in range(8):  # 8 pages through a 4-page cache
            yield from gfs.write(fd, bytes([i]) * (4 * KiB), offset=i * 4 * KiB)
        return dev.bytes_written

    assert run(sys_, proc()) >= 4 * (4 * KiB)  # evicted dirty pages landed
    assert lru.writebacks >= 1


def test_crash_loses_unflushed_dirty_pages_by_design():
    sys_, gfs, lru = make()

    def proc():
        fd = yield from gfs.open("fs::/wb/f", create=True)
        yield from gfs.write(fd, b"X" * (4 * KiB), offset=0)
        lru.state_repair()  # runtime crash: cache dropped
        return (yield from gfs.read(fd, 4 * KiB, offset=0))

    # the un-fsynced write is gone — the durability trade of write-back
    assert run(sys_, proc()) == b"\x00" * (4 * KiB)
