"""S3 property test: snapshot/restore is invisible to the trace digest.

For every scenario × seed, three executions are compared:

- a **straight** run, hashing the full event stream (and, via a second
  hasher armed at T, the suffix from T on);
- a **snapshot** run — identical program, but paused at T to capture a
  :class:`~repro.snap.ReplaySnapshot` before continuing;
- a **restored** run — replay to T from the snapshot, then run to the
  end with the armed hasher.

The pinned properties: capturing is a pure observer (full digests
byte-identical), and the restored continuation is seamless (suffix
digests byte-identical, results equal).  One broken ``on_snapshot``/
``on_restore`` hook, one RNG stream not rewound, one extra event
injected by the capture — and a digest flips.
"""

import pytest

from repro.snap import restore_run, snapshot_run, straight_run
from repro.snap.programs import UpgradeUnderLoadProgram, program_named

SCENARIOS = ("faults", "batching", "cluster")
SEEDS = (0, 1, 2)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_snapshot_restore_digest_identical(scenario, seed):
    outcome, snap = snapshot_run(program_named(scenario, seed=seed))
    base = straight_run(program_named(scenario, seed=seed),
                        arm_at_ns=snap.time_ns)
    # the capture pause injected zero events into the run
    assert outcome.digest == base.digest, (
        f"{scenario}/seed={seed}: mid-run capture perturbed the event stream")
    assert outcome.result == base.result
    # the restored continuation replays to T, verifies state, and its
    # suffix digest matches the unbroken run's armed hasher
    cont = restore_run(snap)
    assert cont.suffix_digest == base.suffix_digest, (
        f"{scenario}/seed={seed}: restored run diverged after the seam")
    assert cont.result == base.result
    assert cont.time_ns == base.time_ns


def test_distinct_seeds_actually_change_the_run():
    """Guard against the property passing vacuously.  (The faults
    program threads its seed into the device RNG, so the whole event
    timeline moves; batching/cluster seeds only reshuffle payload bytes,
    which the trace hash deliberately does not cover.)"""
    a = straight_run(program_named("faults", seed=0))
    b = straight_run(program_named("faults", seed=1))
    assert a.digest != b.digest


def test_upgrade_under_load_snapshot_mid_upgrade():
    """The E2 rerun: snapshot taken while the hot-swap request is in
    flight under open-loop load; restore is still seamless."""
    outcome, snap = snapshot_run(UpgradeUnderLoadProgram())
    base = straight_run(UpgradeUnderLoadProgram(), arm_at_ns=snap.time_ns)
    assert outcome.digest == base.digest
    cont = restore_run(snap)
    assert cont.suffix_digest == base.suffix_digest
    assert cont.result == base.result
    assert base.result["completed"] == base.result["launched"]
    assert base.result["upgrades_done"] == 1
