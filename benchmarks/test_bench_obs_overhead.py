"""Telemetry overhead: disabled repro.obs must cost only a flag check.

Runs the Fig 4(a)-style anatomy workload with telemetry off and on,
records host wall-time per op for both in ``extra_info``, and asserts
that the disabled path perturbs nothing: identical virtual end time,
no spans allocated, no tracer sinks armed.
"""

import time

from repro.core.runtime import RuntimeConfig
from repro.mods.generic_fs import GenericFS
from repro.obs import Telemetry
from repro.system import LabStorSystem

from conftest import write_bench_artifact

NOPS = 256
BS = 4096


def _run_workload(telemetry):
    sys_ = LabStorSystem(
        devices=("nvme",), config=RuntimeConfig(nworkers=1), telemetry=telemetry
    )
    sys_.stack("fs::/b").fs(variant="all").device("nvme").uuid_prefix("bench").mount()
    gfs = GenericFS(sys_.client())

    def scenario():
        fd = yield from gfs.open("fs::/b/f", create=True)
        for i in range(NOPS):
            yield from gfs.write(fd, b"w" * BS, offset=i * BS)
        for i in range(NOPS):
            yield from gfs.read(fd, BS, offset=i * BS)

    t0 = time.perf_counter()
    sys_.run(sys_.process(scenario()))
    wall = time.perf_counter() - t0
    vnow = sys_.env.now
    sys_.shutdown()
    return wall, vnow, sys_


def test_bench_obs_overhead(benchmark):
    def once():
        # interleave off/on pairs and keep the best of each so a host
        # scheduling hiccup can't skew one side
        best_off = best_on = float("inf")
        vt_off = vt_on = None
        for _ in range(3):
            w, v, sys_off = _run_workload(False)
            best_off = min(best_off, w)
            vt_off = v
            assert sys_off.telemetry is None
            assert not sys_off.env.tracer.obs
            assert not sys_off.env.tracer.enabled

            telemetry = Telemetry()
            w, v, _ = _run_workload(telemetry)
            best_on = min(best_on, w)
            vt_on = v
            assert telemetry.closed_total == 2 * NOPS + 1  # writes + reads + open
        return best_off, best_on, vt_off, vt_on

    best_off, best_on, vt_off, vt_on = benchmark.pedantic(once, rounds=1, iterations=1)

    # telemetry is passive: armed or not, the simulated timeline is identical
    assert vt_off == vt_on

    per_op_off_us = best_off / (2 * NOPS) * 1e6
    per_op_on_us = best_on / (2 * NOPS) * 1e6
    delta_pct = (best_on - best_off) / best_off * 100
    benchmark.extra_info["per_op_off_us"] = round(per_op_off_us, 2)
    benchmark.extra_info["per_op_on_us"] = round(per_op_on_us, 2)
    benchmark.extra_info["enabled_delta_pct"] = round(delta_pct, 1)
    write_bench_artifact(
        "obs_overhead",
        [{"per_op_off_us": round(per_op_off_us, 2),
          "per_op_on_us": round(per_op_on_us, 2),
          "enabled_delta_pct": round(delta_pct, 1)}],
        figure="telemetry overhead",
    )
    print(
        f"\ntelemetry off: {per_op_off_us:.2f} us/op   "
        f"on: {per_op_on_us:.2f} us/op   (enabled delta {delta_pct:+.1f}%)"
    )
