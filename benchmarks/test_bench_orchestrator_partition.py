"""E4 — regenerate Fig 5(b): RR vs dynamic request partitioning."""

from repro.experiments import orchestration_partition

from conftest import run_figure


def test_bench_orchestrator_partition(benchmark):
    rows = run_figure(
        benchmark,
        lambda: orchestration_partition.sweep_partition(
            worker_counts=(1, 2, 4, 8), creates_per_thread=150, writes_per_thread=8
        ),
        orchestration_partition.format_partition,
        "Fig 5(b)",
    )
    by = {(r["policy"], r["nworkers"]): r for r in rows}
    # RR achieves the highest bandwidth at every worker count
    for n in (2, 4, 8):
        assert by[("rr", n)]["c_bw_MBps"] >= by[("dynamic", n)]["c_bw_MBps"] * 0.99
    # ...but destroys L-App tail latency; dynamic protects it
    assert by[("dynamic", 2)]["l_lat_p99_us"] < by[("rr", 2)]["l_lat_p99_us"] / 5
    assert by[("dynamic", 4)]["l_lat_p99_us"] < by[("rr", 4)]["l_lat_p99_us"] / 5
    # the bandwidth cost of separation shrinks as workers grow (30% -> 6%)
    cost2 = 1 - by[("dynamic", 2)]["c_bw_MBps"] / by[("rr", 2)]["c_bw_MBps"]
    cost8 = 1 - by[("dynamic", 8)]["c_bw_MBps"] / by[("rr", 8)]["c_bw_MBps"]
    assert cost8 < cost2
