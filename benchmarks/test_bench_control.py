"""E15 — closed-loop control: controller vs static-best vs oracle."""

from repro.experiments import control_plane

from conftest import write_bench_artifact


def test_bench_control(benchmark):
    holder = {}

    def once():
        holder["result"] = control_plane.sweep_control_plane(processes=1)
        return holder["result"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = holder["result"]
    table = control_plane.format_control_plane(result)
    benchmark.extra_info["figure"] = "E15 — shifting mix: controller vs static"
    benchmark.extra_info["table"] = table
    path = write_bench_artifact(
        "control", result["rows"],
        figure="E15 — shifting mix: controller vs static",
        controller_total=result["controller_total"],
        static_best_total=result["static_best_total"],
        static_best_limit=result["static_best_limit"],
        oracle_total=result["oracle_total"],
        beats_static=result["beats_static"],
        vs_oracle=result["vs_oracle"],
        seed=result["seed"],
    )
    benchmark.extra_info["artifact"] = str(path)
    print("\n" + table)

    # the control plane must earn its keep: strictly better than the best
    # static admission limit, and within 10% of the per-phase oracle
    assert result["beats_static"], (
        f"controller {result['controller_total']} <= "
        f"static-best {result['static_best_total']} "
        f"(limit {result['static_best_limit']})"
    )
    assert result["vs_oracle"] >= 0.9, (
        f"controller at {result['vs_oracle']:.0%} of oracle "
        f"{result['oracle_total']}"
    )
    # the controller must actually have steered (not won by luck of the
    # starting limit): actions were taken and the final limits differ
    # across phases' needs
    controller_row = next(r for r in result["rows"] if r["mode"] == "controller")
    assert controller_row["ctl_actions"] > 0, "controller never actuated"
