"""E6 — regenerate Fig 7: metadata throughput (FxMark creates)."""

from repro.experiments import metadata

from conftest import run_figure


def test_bench_metadata(benchmark):
    rows = run_figure(
        benchmark,
        lambda: metadata.sweep_metadata(thread_counts=(1, 4, 8, 16, 24),
                                        files_per_thread=60),
        metadata.format_metadata,
        "Fig 7",
    )
    by = {(r["config"], r["nthreads"]): r["kops_per_sec"] for r in rows}
    # LabFS up to ~3x over the kernel filesystems single-threaded
    assert by[("labfs-all", 1)] > 1.8 * by[("ext4", 1)]
    # removing permissions: ~+7%; removing the centralized authority: ~+20%
    assert 1.02 < by[("labfs-min", 1)] / by[("labfs-all", 1)] < 1.20
    assert 1.08 < by[("labfs-d", 1)] / by[("labfs-min", 1)] < 1.45
    # LabFS scales with client threads; kernel FSes flatline on their locks
    assert by[("labfs-all", 24)] > 6 * by[("labfs-all", 1)]
    for fs in ("ext4", "xfs", "f2fs"):
        assert by[(fs, 24)] < 3 * by[(fs, 1)]
