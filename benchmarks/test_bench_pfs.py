"""E8 — regenerate Fig 9(a): PFS (VPIC / BD-CATS) over customized stacks."""

from repro.experiments import pfs_eval

from conftest import run_figure


def test_bench_pfs(benchmark):
    rows = run_figure(
        benchmark,
        lambda: pfs_eval.sweep_pfs(),
        pfs_eval.format_pfs,
        "Fig 9(a)",
    )

    def vpic(device):
        return {r["mds_backend"]: r["vpic_s"] for r in rows if r["data_device"] == device}

    # fast data devices expose the metadata-server speedup (paper: 6-12%)
    nvme = vpic("nvme")
    gain_nvme = nvme["ext4"] / nvme["labfs-min"] - 1
    assert gain_nvme > 0.04
    # on HDD the I/O cost buries it
    hdd = vpic("hdd")
    gain_hdd = hdd["ext4"] / hdd["labfs-min"] - 1
    assert gain_nvme > gain_hdd + 0.03
