"""E14 — sharded GenericKVS throughput vs. cluster size."""

from repro.experiments import cluster_scaling

from conftest import run_figure


def test_bench_cluster(benchmark):
    rows = run_figure(
        benchmark,
        lambda: cluster_scaling.sweep_cluster_scaling(processes=1),
        cluster_scaling.format_cluster_scaling,
        "E14 — sharded GenericKVS scaling across cluster nodes",
        artifact="cluster",
    )
    by = {(r["nnodes"], r["replicas"]): r for r in rows}
    one, four = by[(1, 1)], by[(4, 1)]
    # the acceptance bar: fixed offered load, >=2x ops/s at 4 nodes
    assert four["kops_s"] >= 2.0 * one["kops_s"], (
        f"cluster failed to scale: {four['kops_s']:.1f} kops/s at 4 nodes "
        f"vs {one['kops_s']:.1f} at 1"
    )
    # replication is not free: the 2-replica points pay write fan-out
    assert by[(4, 2)]["kops_s"] < four["kops_s"], (
        "replicated writes should cost throughput vs replicas=1"
    )
    # remote traffic only exists once there is a second node
    assert one["remote_calls"] == 0 and four["remote_calls"] > 0
