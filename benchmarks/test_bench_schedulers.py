"""E7 — regenerate Fig 8 / Table II: I/O scheduler comparison."""

from repro.experiments import schedulers

from conftest import run_figure


def test_bench_schedulers(benchmark):
    rows = run_figure(
        benchmark,
        lambda: schedulers.sweep_schedulers(l_nops=120, t_nops=120),
        schedulers.format_schedulers,
        "Fig 8 / Table II",
    )
    by = {(r["scheduler"], r["colocated"]): r for r in rows}
    # isolated: noop performs at least as well as blk-switch (paper Table II)
    assert by[("linux-noop", False)]["l_lat_mean_us"] <= 1.05 * by[("linux-blk", False)]["l_lat_mean_us"]
    # colocated: noop suffers head-of-line blocking
    assert by[("linux-noop", True)]["l_lat_p99_us"] > 5 * by[("linux-noop", False)]["l_lat_p99_us"]
    assert by[("lab-noop", True)]["l_lat_p99_us"] > 5 * by[("lab-noop", False)]["l_lat_p99_us"]
    # blk-switch restores QoS in both worlds
    assert by[("linux-blk", True)]["l_lat_p99_us"] < by[("linux-noop", True)]["l_lat_p99_us"] / 3
    assert by[("lab-blk", True)]["l_lat_p99_us"] < by[("lab-noop", True)]["l_lat_p99_us"] / 3
