"""Par — sharded-runner wall clock on the 4-node E14 workload.

Gates the tentpole claim: executing the 4-node E14 point at 4 shards
must beat the shards=1 baseline of the same windowed architecture by
>=1.5x (the measured target is >=1.8x; the gate sits below it so host
jitter cannot flake CI).

Speedup is measured two ways and the honest one is gated:

- ``measured``: plain wall-clock ratio — used when the host actually
  grants this process >= 4 CPUs, because forked shards can only
  overlap in real time if there are cores to run them on.
- ``projected``: on core-starved hosts (CI containers are routinely
  pinned to 1 CPU) the forked processes time-slice one core, so wall
  clock *cannot* improve no matter how good the decomposition is.
  What the run still measures faithfully is each shard's CPU seconds
  (``time.process_time`` — immune to time-slicing) and everything
  else (fork, pickling, routing, barrier wake-ups) as
  ``wall_par - sum(shard_cpu)``.  The critical path on an unstarved
  host is then at most ``max(shard_cpu) + that overhead`` — a
  *conservative* projection, since real barrier overhead overlaps
  shard compute.  The projected ratio is gated with the same bar.

Both numbers, the mode, and every per-shard stat land in
``BENCH_par.json`` so the trajectory across PRs records which kind of
host produced each point.
"""

import os

from repro.experiments.cluster_scaling import run_cluster_scaling_par

from conftest import write_bench_artifact

SHARDS = 4
GATE = 1.5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def test_bench_par(benchmark):
    rows = {}

    def once():
        for shards in (1, SHARDS):
            rows[shards] = run_cluster_scaling_par(
                nnodes=4, shards=shards, seed=0)
        return rows

    benchmark.pedantic(once, rounds=1, iterations=1)
    serial, par = rows[1], rows[SHARDS]

    # the decomposition must not change the simulation itself
    for key in ("ops", "kops_s", "remote_calls", "fabric_MB", "rounds"):
        assert par[key] == serial[key], f"{key} diverged across shard counts"

    measured = serial["wall_s"] / par["wall_s"] if par["wall_s"] else 0.0
    overhead_s = max(0.0, par["wall_s"] - par["total_cpu_s"])
    critical_path_s = par["max_shard_cpu_s"] + overhead_s
    projected = serial["wall_s"] / critical_path_s if critical_path_s else 0.0

    cpus = _usable_cpus()
    mode = "measured" if cpus >= SHARDS else "projected"
    speedup = measured if mode == "measured" else projected

    table_rows = [serial, par]
    for r, label in ((serial, "serial"), (par, f"{SHARDS} shards")):
        r["label"] = label
    write_bench_artifact(
        "par", table_rows,
        figure="Par — conservative sharded runner, 4-node E14",
        shards=SHARDS, cpus=cpus, mode=mode, gate=GATE,
        speedup=speedup, speedup_measured=measured,
        speedup_projected=projected,
    )
    benchmark.extra_info.update(mode=mode, cpus=cpus, speedup=speedup,
                                measured=measured, projected=projected)
    print(f"\npar: serial {serial['wall_s']:.3f}s vs {SHARDS} shards "
          f"{par['wall_s']:.3f}s wall ({measured:.2f}x measured); "
          f"critical path {critical_path_s:.3f}s ({projected:.2f}x "
          f"projected); {cpus} usable cpu(s) -> gating {mode}")

    assert speedup >= GATE, (
        f"sharded runner too slow: {speedup:.2f}x ({mode}, {cpus} cpus) "
        f"< {GATE}x gate — serial {serial['wall_s']:.3f}s, "
        f"par wall {par['wall_s']:.3f}s, "
        f"critical path {critical_path_s:.3f}s")
