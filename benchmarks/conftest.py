"""Shared benchmark plumbing.

Every benchmark runs a full experiment sweep once (pedantic mode — these
are discrete-event simulations, deterministic given the seed, so repeated
rounds only re-measure the host's Python speed), records the reproduced
table in ``extra_info``, prints it so a plain
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
figures as text, and writes the raw rows to a machine-readable
``BENCH_<name>.json`` under ``benchmarks/artifacts/`` (override the
directory with ``BENCH_ARTIFACT_DIR``) for CI to upload and for
regression tooling to diff across commits.
"""

import json
import os
import re
from pathlib import Path

import pytest

ARTIFACT_DIR_ENV = "BENCH_ARTIFACT_DIR"

#: repo root, where a second copy of each artifact is committed so the
#: bench trajectory (the curve of gated numbers across PRs) has a
#: baseline — ``benchmarks/artifacts/`` stays the CI-upload directory
ROOT_DIR = Path(__file__).parent.parent


def _artifact_dir() -> Path:
    configured = os.environ.get(ARTIFACT_DIR_ENV)
    return Path(configured) if configured else Path(__file__).parent / "artifacts"


def write_bench_artifact(name: str, rows, **meta) -> Path:
    """Persist one benchmark's rows as ``BENCH_<name>.json``.

    ``rows`` is the experiment sweep's list of dicts; ``meta`` lands
    alongside it (figure label, knobs).  Non-JSON values degrade to their
    ``str`` form rather than failing the benchmark.  The artifact is
    written twice: under the artifact directory (CI upload) and at the
    repo root (committed trajectory baseline).
    """
    out_dir = _artifact_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = {"name": name, "rows": rows, **meta}
    text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    path.write_text(text)
    try:
        (ROOT_DIR / f"BENCH_{name}.json").write_text(text)
    except OSError:
        pass  # a read-only checkout still gets the primary artifact
    return path


def _slug(benchmark, label: str) -> str:
    name = getattr(benchmark, "name", None) or label
    name = re.sub(r"^test_bench_", "", name)
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


def pytest_sessionfinish(session, exitstatus):
    """Aggregate every ``BENCH_<name>.json`` written this session (or by
    earlier ones into the same directory) into one ``BENCH_summary.json``
    index: figure label, row count and artifact path per benchmark, so CI
    consumers read a single file instead of globbing the directory."""
    out_dir = _artifact_dir()
    if not out_dir.is_dir():
        return
    entries = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue  # a partial artifact must not fail the whole session
        rows = payload.get("rows")
        entries[payload.get("name", path.stem)] = {
            "path": path.name,
            "figure": payload.get("figure"),
            "rows": len(rows) if isinstance(rows, (list, dict)) else None,
        }
    if entries:
        summary = {"benchmarks": entries, "count": len(entries),
                   "exitstatus": int(exitstatus)}
        text = json.dumps(summary, indent=2, sort_keys=True) + "\n"
        (out_dir / "BENCH_summary.json").write_text(text)
        try:
            (ROOT_DIR / "BENCH_summary.json").write_text(text)
        except OSError:
            pass


def run_figure(benchmark, sweep_fn, format_fn, label, artifact: str | None = None):
    """Run a sweep under pytest-benchmark, print its table, and emit the
    ``BENCH_<name>.json`` artifact (name defaults to the test's name with
    the ``test_bench_`` prefix stripped; pass ``artifact=`` to pin it)."""
    result_holder = {}

    def once():
        result_holder["rows"] = sweep_fn()
        return result_holder["rows"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    rows = result_holder["rows"]
    table = format_fn(rows)
    benchmark.extra_info["figure"] = label
    benchmark.extra_info["table"] = table
    path = write_bench_artifact(artifact or _slug(benchmark, label), rows, figure=label)
    benchmark.extra_info["artifact"] = str(path)
    print("\n" + table)
    return rows
