"""Shared benchmark plumbing.

Every benchmark runs a full experiment sweep once (pedantic mode — these
are discrete-event simulations, deterministic given the seed, so repeated
rounds only re-measure the host's Python speed), records the reproduced
table in ``extra_info``, and prints it so a plain
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
figures as text.
"""

import pytest


def run_figure(benchmark, sweep_fn, format_fn, label):
    """Run a sweep under pytest-benchmark and print its table."""
    result_holder = {}

    def once():
        result_holder["rows"] = sweep_fn()
        return result_holder["rows"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    table = format_fn(result_holder["rows"])
    benchmark.extra_info["figure"] = label
    benchmark.extra_info["table"] = table
    print("\n" + table)
    return result_holder["rows"]
