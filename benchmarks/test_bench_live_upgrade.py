"""E2 — regenerate Table I: live-upgrade service interruption.

Runs at 1/8 of the paper's message/upgrade counts (same per-upgrade
cost); the paper's table is {0,256,512,1024} upgrades on a 29s run.
"""

from repro.experiments import live_upgrade

from conftest import run_figure


def test_bench_live_upgrade_table(benchmark):
    result = run_figure(
        benchmark,
        lambda: live_upgrade.sweep_live_upgrade(
            nmessages=6000, upgrade_counts=(0, 16, 32, 64)
        ),
        live_upgrade.format_live_upgrade,
        "Table I",
    )
    rows = result["rows"]
    base = rows["centralized"][0]
    # ~5ms per upgrade (paper: +5.2s over 1024 upgrades)
    per_up_ms = (rows["centralized"][64] - base) * 1000 / 64
    assert 2.0 < per_up_ms < 10.0
    # decentralized is slightly slower at every count
    for n in (16, 32, 64):
        assert rows["decentralized"][n] > rows["centralized"][n]
    # running time grows monotonically with upgrade count
    cen = [rows["centralized"][n] for n in (0, 16, 32, 64)]
    assert cen == sorted(cen)
