"""E12 — batched submission amortization curve (throughput vs batch size)."""

from repro.experiments import batching

from conftest import run_figure


def test_bench_batching(benchmark):
    rows = run_figure(
        benchmark,
        lambda: batching.sweep_batching(nops=256),
        batching.format_batching,
        "E12 — batching amortization",
        artifact="batching",
    )
    by = {r["batch"]: r for r in rows}
    # acceptance floor: >=30% more ops/s at batch=16 than unbatched
    assert by[16]["ops_s"] >= 1.3 * by[1]["ops_s"], (
        f"batch=16 only reached {by[16]['ops_s'] / by[1]['ops_s']:.2f}x"
    )
    # the curve is monotone non-decreasing: more batching never hurts here
    batches = sorted(by)
    for a, b in zip(batches, batches[1:]):
        assert by[b]["ops_s"] >= by[a]["ops_s"], f"throughput dip at batch={b}"
    # per-op latency is the price: a batch settles together
    assert by[16]["p99_ns"] > by[1]["p99_ns"]
