"""E10 — regenerate Fig 9(c): Filebench personalities."""

from repro.experiments import filebench_eval

from conftest import run_figure


def test_bench_filebench(benchmark):
    rows = run_figure(
        benchmark,
        lambda: filebench_eval.sweep_filebench(nthreads=4, loops=5),
        filebench_eval.format_filebench,
        "Fig 9(c)",
    )
    by = {(r["config"], r["personality"]): r["kops_per_sec"] for r in rows}
    # LabFS stacks win the metadata/small-I/O personalities
    for wl in ("varmail", "webproxy"):
        best_kernel = max(by[(fs, wl)] for fs in ("ext4", "xfs", "f2fs"))
        assert by[("lab-min", wl)] > best_kernel
        assert by[("lab-d", wl)] > by[("lab-all", wl)]
    # fileserver is the exception: bandwidth-bound, LabFS does not win
    assert by[("lab-min", "fileserver")] < 1.2 * by[("ext4", "fileserver")]
