"""E9 — regenerate Fig 9(b): LABIOS worker throughput."""

from repro.experiments import labios_eval

from conftest import run_figure


def test_bench_labios(benchmark):
    rows = run_figure(
        benchmark,
        lambda: labios_eval.sweep_labios(nlabels=150),
        labios_eval.format_labios,
        "Fig 9(b)",
    )
    for device in ("nvme", "pmem"):
        mbps = {r["backend"]: r["MBps"] for r in rows if r["device"] == device}
        best_fs = max(mbps["ext4"], mbps["xfs"], mbps["f2fs"])
        # paper: filesystems degrade by at least 12% vs LabKVS
        assert mbps["labkvs-all"] > 1.12 * best_fs
        # relaxing access control buys more (paper: up to +16%)
        assert mbps["labkvs-d"] > mbps["labkvs-min"] > mbps["labkvs-all"]
