"""E5 — regenerate Fig 6: storage interface performance."""

from repro.experiments import storage_api
from repro.experiments.report import normalize

from conftest import run_figure


def test_bench_storage_api(benchmark):
    rows = run_figure(
        benchmark,
        lambda: storage_api.sweep_storage_api(nops=250, hdd_nops=40),
        storage_api.format_storage_api,
        "Fig 6",
    )

    def iops(device, bs):
        return {r["interface"]: r["iops"] for r in rows
                if r["device"] == device and r["bs"] == bs}

    nvme4k = iops("nvme", 4096)
    # paper: KernelDriver >= 15% over the best kernel API at 4KB on NVMe
    assert nvme4k["lab_kernel_driver"] > 1.15 * nvme4k["io_uring"]
    # SPDK ~12% over KernelDriver
    assert 1.05 < nvme4k["lab_spdk"] / nvme4k["lab_kernel_driver"] < 1.25
    # POSIX AIO: the worst interface on NVMe (60-70% overhead territory)
    assert min(nvme4k, key=nvme4k.get) == "posix_aio"

    # 128KB collapses the spread to single digits for the kernel-driver gap
    nvme128k = iops("nvme", 128 * 1024)
    gap_128k = nvme128k["lab_spdk"] / nvme128k["posix"] - 1
    gap_4k = nvme4k["lab_spdk"] / nvme4k["posix"] - 1
    assert gap_128k < gap_4k / 2

    # HDD: seek-dominated, everything ties
    hdd = normalize(iops("hdd", 4096))
    assert min(hdd.values()) > 0.95

    # PMEM: DAX crushes every queued path
    pmem = iops("pmem", 4096)
    assert pmem["lab_dax"] > 2 * pmem["lab_kernel_driver"]
