"""E1 — regenerate Fig 4(a): I/O stack anatomy."""

from repro.experiments import anatomy

from conftest import run_figure


def test_bench_anatomy_write(benchmark):
    rows = run_figure(
        benchmark,
        lambda: anatomy.run_anatomy("write", nops=128),
        anatomy.format_anatomy,
        "Fig 4(a) write",
    )
    f = rows["fractions"]
    assert f["Device I/O"] > 0.45            # paper: ~66%
    assert 0.08 < f["Page cache (LRU)"] < 0.25  # paper: ~17%
    assert 0.03 < f["IPC (shm queues)"] < 0.15  # paper: ~8.4%


def test_bench_anatomy_read(benchmark):
    rows = run_figure(
        benchmark,
        lambda: anatomy.run_anatomy("read", nops=128),
        anatomy.format_anatomy,
        "Fig 4(a) read",
    )
    assert rows["fractions"]["Device I/O"] > 0.40  # "results are similar for reads"
