"""E3 — regenerate Fig 5(a): Work Orchestrator dynamic CPU allocation."""

from repro.experiments import orchestration_cpu

from conftest import run_figure


def test_bench_orchestrator_cpu(benchmark):
    rows = run_figure(
        benchmark,
        lambda: orchestration_cpu.sweep_orchestration_cpu(
            client_counts=(1, 2, 4, 8, 16), ops_per_client=600
        ),
        orchestration_cpu.format_orchestration_cpu,
        "Fig 5(a)",
    )
    by = {(r["workers"], r["nclients"]): r for r in rows}
    # 1 worker saturates: by 8 clients it is far below the 8-worker config
    assert by[("1worker", 8)]["iops"] < 0.6 * by[("8workers", 8)]["iops"]
    # at low client counts a single worker matches the big pool
    assert by[("1worker", 1)]["iops"] > 0.95 * by[("8workers", 1)]["iops"]
    # 8 workers burn more CPU than dynamic at mid-range load
    assert by[("8workers", 8)]["busy_cores"] > 1.5 * by[("dynamic", 8)]["busy_cores"]
    # dynamic approaches the 8-worker performance at 16 clients
    assert by[("dynamic", 16)]["iops"] > 0.75 * by[("8workers", 16)]["iops"]
