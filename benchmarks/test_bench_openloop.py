"""E13 — open-loop overload: goodput vs offered load, none vs queue-depth."""

from repro.experiments import openloop

from conftest import run_figure


def test_bench_openloop(benchmark):
    rows = run_figure(
        benchmark,
        lambda: openloop.sweep_openloop(processes=1),
        openloop.format_openloop,
        "E13 — open-loop overload (goodput vs offered load)",
        artifact="openloop",
    )
    by = {(r["policy"], r["load"]): r for r in rows}
    loads = sorted({r["load"] for r in rows})
    lo, hi = loads[0], loads[-1]
    # below saturation goodput tracks offered load (no admission needed)
    light = by[("none", lo)]
    assert light["good"] >= 0.9 * light["launched"], (
        f"light load already violating SLOs: {light}"
    )
    # past saturation the no-admission goodput collapses below the knee...
    knee = max(by[("none", load)]["goodput_ops_s"] for load in loads)
    collapsed = by[("none", hi)]["goodput_ops_s"]
    assert collapsed < 0.6 * knee, (
        f"open loop failed to expose overload: {collapsed:.0f} vs knee {knee:.0f}"
    )
    # ...while queue-depth admission sheds load and holds a plateau
    guarded = by[("queue-depth", hi)]
    assert guarded["rejected"] > 0, "admission control never engaged"
    assert guarded["goodput_ops_s"] > 2.0 * collapsed, (
        f"admission control did not protect goodput: "
        f"{guarded['goodput_ops_s']:.0f} vs {collapsed:.0f}"
    )
