"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments import ablations

from conftest import run_figure


def test_bench_ablation_allocator(benchmark):
    rows = run_figure(
        benchmark,
        lambda: ablations.ablate_allocator(),
        lambda r: ablations.format_ablation(r, "Ablation — per-worker vs centralized allocator"),
        "ablation: allocator",
    )
    by = {r["config"]: r["files_per_sec"] for r in rows}
    assert by["perworker"] > 1.1 * by["centralized"]


def test_bench_ablation_ipc_cost(benchmark):
    rows = run_figure(
        benchmark,
        lambda: ablations.ablate_ipc_cost(),
        lambda r: ablations.format_ablation(r, "Ablation — IPC hop cost sensitivity"),
        "ablation: ipc",
    )
    # throughput strictly degrades as the hop price rises; socket-grade
    # IPC (8us) loses badly vs shared memory (950ns)
    vals = [r["kops_per_sec"] for r in rows]
    assert vals == sorted(vals, reverse=True)
    assert vals[0] > 1.3 * vals[-1]


def test_bench_ablation_exec_mode(benchmark):
    rows = run_figure(
        benchmark,
        lambda: ablations.ablate_exec_mode(),
        lambda r: ablations.format_ablation(r, "Ablation — async (Runtime) vs sync (client)"),
        "ablation: exec mode",
    )
    by = {r["config"]: r["lat_us"] for r in rows}
    # sync saves the IPC round trip on small requests...
    assert by["sync 4KB"] < by["async 4KB"]
    # ...but the gap closes (relatively) as device time dominates
    rel_small = by["async 4KB"] / by["sync 4KB"]
    rel_big = by["async 1024KB"] / by["sync 1024KB"]
    assert rel_big < rel_small


def test_bench_ablation_consistency(benchmark):
    rows = run_figure(
        benchmark,
        lambda: ablations.ablate_consistency(),
        lambda r: ablations.format_ablation(r, "Ablation — consistency guarantee levels"),
        "ablation: consistency",
    )
    by = {r["config"]: r["ops_per_sec"] for r in rows}
    assert by["relaxed"] > by["standard"] > by["strict"]


def test_bench_ablation_cache_capacity(benchmark):
    rows = run_figure(
        benchmark,
        lambda: ablations.ablate_cache_capacity(),
        lambda r: ablations.format_ablation(r, "Ablation — LRU cache capacity"),
        "ablation: cache",
    )
    # bigger cache -> higher hit rate -> lower read latency
    assert rows[0]["hit_rate"] < rows[-1]["hit_rate"]
    assert rows[-1]["read_lat_us"] < rows[0]["read_lat_us"]
