"""Fault-injection overhead: no plan must cost only a None check.

Runs the same GenericFS workload with no FaultPlan and with an armed
plan whose specs can never fire (a media_error pinned to t=1e18 ns), and
asserts the unarmed path leaves every seam on its fast path: no device
injector, no QP reject hook, no fault engine.  The armed-but-idle delta
is recorded in ``extra_info`` and must stay within a few percent — the
per-request cost is one attribute check at the device and one at the SQ.
"""

import time

from repro.core.runtime import RuntimeConfig
from repro.faults import FaultPlan, FaultSpec
from repro.mods.generic_fs import GenericFS
from repro.system import LabStorSystem

from conftest import write_bench_artifact

NOPS = 256
BS = 4096

#: armed but inert: fires at ~31.7 virtual years
NEVER_PLAN = FaultPlan.of(
    FaultSpec(kind="media_error", device="nvme", op="write", at=10**18)
)


def _run_workload(plan):
    sys_ = LabStorSystem(
        devices=("nvme",), config=RuntimeConfig(nworkers=1), fault_plan=plan
    )
    sys_.stack("fs::/b").fs(variant="all").device("nvme").uuid_prefix("bench").mount()
    gfs = GenericFS(sys_.client())

    def scenario():
        fd = yield from gfs.open("fs::/b/f", create=True)
        for i in range(NOPS):
            yield from gfs.write(fd, b"w" * BS, offset=i * BS)
        for i in range(NOPS):
            yield from gfs.read(fd, BS, offset=i * BS)

    t0 = time.perf_counter()
    sys_.run(sys_.process(scenario()))
    wall = time.perf_counter() - t0
    vnow = sys_.env.now
    sys_.shutdown()
    return wall, vnow, sys_


def test_bench_faults_overhead(benchmark):
    def once():
        # interleave off/on pairs and keep the best of each so a host
        # scheduling hiccup can't skew one side
        best_off = best_on = float("inf")
        vt_off = vt_on = None
        for _ in range(3):
            w, v, sys_off = _run_workload(None)
            best_off = min(best_off, w)
            vt_off = v
            assert sys_off.faults is None
            assert sys_off.devices["nvme"].faults is None

            w, v, sys_on = _run_workload(NEVER_PLAN)
            best_on = min(best_on, w)
            vt_on = v
            assert sys_on.faults is not None
            assert sys_on.faults.total_injected == 0  # armed, never fired
        return best_off, best_on, vt_off, vt_on

    best_off, best_on, vt_off, vt_on = benchmark.pedantic(once, rounds=1, iterations=1)

    # an idle plan is passive: armed or not, the simulated timeline is identical
    assert vt_off == vt_on

    per_op_off_us = best_off / (2 * NOPS) * 1e6
    per_op_on_us = best_on / (2 * NOPS) * 1e6
    delta_pct = (best_on - best_off) / best_off * 100
    benchmark.extra_info["per_op_off_us"] = round(per_op_off_us, 2)
    benchmark.extra_info["per_op_on_us"] = round(per_op_on_us, 2)
    benchmark.extra_info["armed_idle_delta_pct"] = round(delta_pct, 1)
    write_bench_artifact(
        "faults_overhead",
        [{"per_op_off_us": round(per_op_off_us, 2),
          "per_op_on_us": round(per_op_on_us, 2),
          "armed_idle_delta_pct": round(delta_pct, 1)}],
        figure="fault-injection overhead",
    )
    # generous bound: host noise dwarfs the two attribute checks
    assert delta_pct < 15.0
    print(
        f"\nfaults off: {per_op_off_us:.2f} us/op   "
        f"armed-idle: {per_op_on_us:.2f} us/op   (delta {delta_pct:+.1f}%)"
    )
